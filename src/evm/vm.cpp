#include "evm/vm.hpp"

#include <cstring>
#include <limits>

#include "crypto/hash.hpp"
#include "evm/code_cache.hpp"
#include "evm/decoded.hpp"

// Token-threaded dispatch (GCC/Clang): one 256-entry table maps each code
// byte to a handler label plus its folded static gas / cycle model, and
// `goto *table[...]` jumps straight to the handler. Other compilers fall
// back to a single dense switch over the same table, which they compile to
// one jump table — still strictly flatter than the legacy two-level switch.
#if defined(__GNUC__) || defined(__clang__)
#define TINYEVM_COMPUTED_GOTO 1
#else
#define TINYEVM_COMPUTED_GOTO 0
#endif

namespace tinyevm::evm {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Success: return "success";
    case Status::Revert: return "revert";
    case Status::OutOfGas: return "out of gas";
    case Status::StackOverflow: return "stack overflow";
    case Status::StackUnderflow: return "stack underflow";
    case Status::OutOfMemory: return "out of memory";
    case Status::StorageExhausted: return "storage exhausted";
    case Status::InvalidJump: return "invalid jump";
    case Status::InvalidOpcode: return "invalid opcode";
    case Status::ForbiddenOpcode: return "forbidden opcode";
    case Status::SensorFailure: return "sensor failure";
    case Status::CallDepthExceeded: return "call depth exceeded";
    case Status::StaticViolation: return "static violation";
    case Status::WatchdogExpired: return "watchdog expired";
  }
  return "unknown";
}

CodeAnalysis::CodeAnalysis(std::span<const std::uint8_t> code)
    : jumpdest_(code.size(), false) {
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const std::uint8_t op = code[pc];
    if (op == static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      jumpdest_[pc] = true;
    } else if (is_push(op)) {
      pc += push_size(op);  // immediates are data, never jump targets
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch table
// ---------------------------------------------------------------------------
// The Handler instruction set and the TINYEVM_HANDLER_LIST X-macro live in
// decoded.hpp, shared with the bytecode translator.

/// One table slot: handler id, family index (PUSH width / DUP-SWAP depth /
/// LOG topic count), and the per-opcode static gas and MCU-cycle model
/// folded in so the hot loop does a single 8-byte load per opcode.
struct DispatchEntry {
  Handler handler = Handler::Undefined;
  std::uint8_t aux = 0;
  std::uint16_t gas = 0;
  std::uint32_t cycles = 0;
};
static_assert(sizeof(DispatchEntry) == 8);

struct DispatchTable {
  std::array<DispatchEntry, 256> entries{};
};

namespace {

DispatchTable build_dispatch_table(const VmConfig& config) {
  DispatchTable table;
  const bool tiny = config.profile == VmProfile::TinyEvm;
  for (unsigned i = 0; i < 256; ++i) {
    const auto op = static_cast<std::uint8_t>(i);
    DispatchEntry& e = table.entries[i];
    switch (classify(op, tiny, config.iot_opcodes, config.block_opcodes)) {
      case OpValidity::Undefined:
        e.handler = Handler::Undefined;
        continue;
      case OpValidity::Forbidden:
        e.handler = Handler::Forbidden;
        continue;
      case OpValidity::Ok:
        break;
    }
    const OpInfo& inf = info(op);
    e.handler = exec_handler(op);
    e.gas = inf.base_gas;
    e.cycles = inf.mcu_cycles;
    if (is_push(op)) {
      e.aux = static_cast<std::uint8_t>(push_size(op));
    } else if (is_dup(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0x7f);
    } else if (is_swap(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0x8f);
    } else if (is_log(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0xa0);
    }
  }
  return table;
}

using u128 = unsigned __int128;

/// Low 160 bits of an EVM word as an address.
inline Address to_address(const U256& v) {
  Address addr{};
  const auto w = v.to_word();
  std::memcpy(addr.data(), w.data() + 12, 20);
  return addr;
}

/// Interpreter frame; created per message and torn down when the run ends.
/// With a decoded program the frame runs the pre-decoded loop; otherwise it
/// falls back to the raw threaded loop (and only then pays the per-run
/// JUMPDEST analysis pass).
class Frame {
 public:
  Frame(const VmConfig& config, const DispatchTable& table, Host& host,
        const Message& msg, const DecodedProgram* decoded)
      : config_(config),
        table_(table),
        host_(host),
        msg_(msg),
        decoded_(decoded),
        stack_(config.stack_limit),
        memory_(config.memory_limit),
        gas_(msg.gas) {
    if (decoded_ == nullptr) analysis_.emplace(msg.code);
  }

  ExecResult run();

 private:
  // -- helpers --------------------------------------------------------
  [[nodiscard]] bool charge(std::int64_t amount) {
    if (!config_.metering) return true;
    gas_ -= amount;
    return gas_ >= 0;
  }

  /// Quadratic memory-expansion gas (Ethereum profile); hard cap check
  /// (TinyEVM profile) happens inside Memory::expand. Priced in 128-bit
  /// arithmetic: for offsets beyond ~2^37 the w*w term overflows 64 bits,
  /// and a wrapped cost would under-charge (or even *credit* gas) instead
  /// of running out — so compute exactly and out-of-gas on saturation.
  [[nodiscard]] bool charge_memory(std::uint64_t offset, std::uint64_t len) {
    if (len == 0) return true;
    if (!config_.metering) return true;
    const u128 end = static_cast<u128>(offset) + len;
    const u128 new_words = (end + 31) / 32;
    const u128 old_words = (memory_.size() + 31) / 32;
    if (new_words <= old_words) return true;
    const auto cost = [](u128 w) { return 3 * w + w * w / 512; };
    const u128 delta = cost(new_words) - cost(old_words);
    if (delta > static_cast<u128>(std::numeric_limits<std::int64_t>::max())) {
      return false;  // cost exceeds any possible gas budget
    }
    return charge(static_cast<std::int64_t>(delta));
  }

  /// Pops a memory (offset, length) pair, validating both fit in 64 bits.
  struct MemRange {
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::optional<MemRange> pop_range() {
    const auto off = stack_.pop();
    const auto len = stack_.pop();
    if (!off || !len) {
      fail(Status::StackUnderflow);
      return std::nullopt;
    }
    if (!len->is_zero() && (!off->fits_u64() || !len->fits_u64())) {
      fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
      return std::nullopt;
    }
    return MemRange{off->fits_u64() ? off->as_u64() : 0, len->as_u64()};
  }

  /// Prepares a memory range: expansion gas + hard-cap growth.
  bool grow(std::uint64_t offset, std::uint64_t len) {
    if (!charge_memory(offset, len)) {
      fail(Status::OutOfGas);
      return false;
    }
    if (!memory_.expand(offset, len)) {
      fail(Status::OutOfMemory);
      return false;
    }
    return true;
  }

  void fail(Status status) {
    status_ = status;
    done_ = true;
  }

  bool push(const U256& v) {
    if (!stack_.push(v)) {
      fail(Status::StackOverflow);
      return false;
    }
    return true;
  }

  std::optional<U256> pop() {
    auto v = stack_.pop();
    if (!v) fail(Status::StackUnderflow);
    return v;
  }

  /// CALLDATALOAD: one 32-byte big-endian word at `offset`, zero-padded
  /// past the end of calldata. Shared by the raw loop, the checked decoded
  /// handler, and the check-elided span body.
  [[nodiscard]] U256 calldata_word(const U256& offset) const {
    std::array<std::uint8_t, 32> buf{};
    // Bound i by the bytes remaining past o: `o + i` would wrap for
    // offsets near 2^64 and alias the start of calldata.
    if (offset.fits_u64() && offset.as_u64() < msg_.data.size()) {
      const std::uint64_t o = offset.as_u64();
      const std::uint64_t avail = msg_.data.size() - o;
      for (unsigned i = 0; i < 32 && i < avail; ++i) {
        buf[i] = msg_.data[o + i];
      }
    }
    return U256::from_word(buf);
  }

  void run_threaded();
  void run_decoded();
  void op_sensor();
  void op_sha3();
  void op_copy(std::span<const std::uint8_t> src, bool external_code);
  void op_log(unsigned topic_count);
  void op_create();
  void op_call(CallKind kind);
  void op_return(bool revert);
  void op_sstore();
  void op_exp();

  // -- state ----------------------------------------------------------
  const VmConfig& config_;
  const DispatchTable& table_;
  Host& host_;
  const Message& msg_;
  const DecodedProgram* decoded_;
  std::optional<CodeAnalysis> analysis_;  // raw-loop runs only
  Stack stack_;
  Memory memory_;
  Bytes return_data_;  // last nested-call output (RETURNDATA*)
  Bytes output_;
  std::uint64_t pc_ = 0;
  std::int64_t gas_;
  std::uint64_t cycles_ = 0;
  std::uint64_t ops_ = 0;
  Status status_ = Status::Success;
  bool done_ = false;
};

ExecResult Frame::run() {
  if (msg_.depth > config_.max_call_depth) {
    return ExecResult{Status::CallDepthExceeded, {}, gas_, {}};
  }
  if (decoded_ != nullptr) {
    run_decoded();
  } else {
    run_threaded();
  }
  ExecResult result;
  result.status = status_;
  result.output = std::move(output_);
  result.gas_left = status_ == Status::Success || status_ == Status::Revert
                        ? gas_
                        : 0;
  result.stats.max_stack_pointer = stack_.max_pointer();
  result.stats.peak_memory = memory_.peak();
  result.stats.ops_executed = ops_;
  result.stats.mcu_cycles = cycles_;
  return result;
}

// ---------------------------------------------------------------------------
// Token-threaded interpreter loop
// ---------------------------------------------------------------------------
//
// Per-opcode path: one table load, one (predictable) validity branch, the
// folded gas/cycle/watchdog accounting, then a direct jump to the handler.
// This loop decodes from raw bytecode every run; it is the fallback for
// translate misses and oversized code, and the semantic reference the
// pre-decoded loop below must match bit-for-bit (the golden/differential
// suite in tests/evm_dispatch_test.cpp holds both paths to identical
// results).
//
// Binary operators pop ONE operand and rewrite the second in place via
// Stack::top() and the U256 *_assign ops, eliminating the two
// optional<U256> round-trips and the result push of a pop/pop/push scheme.

void Frame::run_threaded() {
  const DispatchEntry* const entries = table_.entries.data();
  const std::uint8_t* const code = msg_.code.data();
  const std::uint64_t code_size = msg_.code.size();
  const bool metered = config_.metering;
  const std::uint64_t ops_cap =
      config_.max_ops == 0 ? std::numeric_limits<std::uint64_t>::max()
                           : config_.max_ops;
  std::uint64_t pc = 0;
  const DispatchEntry* e = nullptr;
  // Register-cached copies of the per-op hot state: the accounting
  // counters the dispatch prologue touches every opcode, the operand
  // stack (base/sp/high-water), and — crucially — the top-of-stack
  // *value* itself. With `tos` in registers a DUP1/binary-op pair runs
  // one store plus one load instead of chaining every operand through
  // memory. Invariant: when sp > 0 the logical top lives in `tos` and
  // base()[sp-1] is stale; TINYEVM_SYNCED restores the flat-memory view
  // around any helper call, and run_exit publishes the final state.
  std::int64_t gas = gas_;
  std::uint64_t cyc = cycles_;
  std::uint64_t ops = ops_;
  U256* const sb = stack_.base();  // sb[-1] is a scratch word (see Stack)
  const std::size_t slimit = stack_.limit();
  std::size_t sp = stack_.size();
  std::size_t smax = stack_.max_pointer();
  U256 tos = sp != 0 ? sb[sp - 1] : U256{};

#define TINYEVM_SYNCED(expr)        \
  do {                              \
    gas_ = gas;                     \
    cycles_ = cyc;                  \
    sb[sp - 1] = tos;               \
    stack_.set_state(sp, smax);     \
    expr;                           \
    gas = gas_;                     \
    cyc = cycles_;                  \
    sp = stack_.size();             \
    smax = stack_.max_pointer();    \
    tos = sb[sp - 1];               \
  } while (0)

// Stack push against the cached registers; overflow fails the frame (the
// following dispatch notices done_), matching Frame::push.
#define TINYEVM_PUSH(v)             \
  do {                              \
    if (sp >= slimit) {             \
      fail(Status::StackOverflow);  \
    } else {                        \
      sb[sp - 1] = tos;             \
      tos = (v);                    \
      ++sp;                         \
      if (sp > smax) smax = sp;     \
    }                               \
  } while (0)

// The prologue every opcode runs: bounds/halt check, table load, validity
// short-circuit, folded static gas, cycle model, watchdog, pc advance.
#define TINYEVM_PROLOGUE()                                                  \
  if (done_ || pc >= code_size) goto run_exit;                              \
  e = &entries[code[pc]];                                                   \
  if (static_cast<std::uint8_t>(e->handler) <=                              \
      static_cast<std::uint8_t>(Handler::Forbidden)) {                      \
    fail(e->handler == Handler::Undefined ? Status::InvalidOpcode           \
                                          : Status::ForbiddenOpcode);       \
    goto run_exit;                                                          \
  }                                                                         \
  if (metered) {                                                            \
    gas -= e->gas;                                                          \
    if (gas < 0) {                                                          \
      fail(Status::OutOfGas);                                               \
      goto run_exit;                                                        \
    }                                                                       \
  }                                                                         \
  cyc += e->cycles;                                                         \
  if (++ops > ops_cap) {                                                    \
    fail(Status::WatchdogExpired);                                          \
    goto run_exit;                                                          \
  }                                                                         \
  ++pc;

#if TINYEVM_COMPUTED_GOTO
  static const void* const kJump[] = {
#define TINYEVM_H_LABEL(name) &&h_##name,
      TINYEVM_HANDLER_LIST(TINYEVM_H_LABEL)
#undef TINYEVM_H_LABEL
  };
#define TINYEVM_OP(name) h_##name:
// Token threading proper: every handler tail replicates the full dispatch
// sequence instead of jumping back to a single shared dispatch point, so
// the indirect branch predictor sees one site per handler and can learn
// the bytecode's opcode-pair patterns. (The evm module builds with
// -fno-crossjumping -fno-gcse under GCC so the copies stay distinct.)
#define TINYEVM_NEXT                                           \
  do {                                                         \
    TINYEVM_PROLOGUE()                                         \
    goto *kJump[static_cast<std::uint8_t>(e->handler)];        \
  } while (0)
  TINYEVM_NEXT;
#else
#define TINYEVM_OP(name) case Handler::name:
#define TINYEVM_NEXT break
  for (;;) {
    TINYEVM_PROLOGUE()
    switch (e->handler) {
#endif

  // Unreachable in practice — the prologue short-circuits these two — but
  // kept as real handlers so the jump table is total.
  TINYEVM_OP(Undefined) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(Forbidden) { fail(Status::ForbiddenOpcode); }
  TINYEVM_NEXT;

  TINYEVM_OP(Stop) { done_ = true; }
  TINYEVM_NEXT;

// Binary operators: the first operand is `tos` (in registers), `s` is the
// second operand's memory slot. The body leaves the result in `tos`; the
// pop is just --sp, so the pair costs one load instead of the legacy
// pop/pop/push round-trips.
#define TINYEVM_BINARY(body)                    \
  {                                             \
    if (sp < 2) {                               \
      fail(Status::StackUnderflow);             \
      TINYEVM_NEXT;                             \
    }                                           \
    const U256& s = sb[sp - 2];                 \
    body;                                       \
    --sp;                                       \
  }                                             \
  TINYEVM_NEXT

  TINYEVM_OP(Add) TINYEVM_BINARY(tos.add_assign(s));
  TINYEVM_OP(Mul) TINYEVM_BINARY(tos.mul_assign(s));
  TINYEVM_OP(Sub) TINYEVM_BINARY(tos.sub_assign(s));  // tos = top - second
  TINYEVM_OP(Div) TINYEVM_BINARY(tos = tos / s);
  TINYEVM_OP(Sdiv) TINYEVM_BINARY(tos = U256::sdiv(tos, s));
  TINYEVM_OP(Mod) TINYEVM_BINARY(tos = tos % s);
  TINYEVM_OP(Smod) TINYEVM_BINARY(tos = U256::smod(tos, s));
  TINYEVM_OP(Lt) TINYEVM_BINARY(tos = U256{tos < s ? 1ULL : 0ULL});
  TINYEVM_OP(Gt) TINYEVM_BINARY(tos = U256{tos > s ? 1ULL : 0ULL});
  TINYEVM_OP(Slt) TINYEVM_BINARY(tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Sgt) TINYEVM_BINARY(tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Eq) TINYEVM_BINARY(tos = U256{tos == s ? 1ULL : 0ULL});
  TINYEVM_OP(And) TINYEVM_BINARY(tos.and_assign(s));
  TINYEVM_OP(Or) TINYEVM_BINARY(tos.or_assign(s));
  TINYEVM_OP(Xor) TINYEVM_BINARY(tos.xor_assign(s));
  TINYEVM_OP(Byte) TINYEVM_BINARY(tos = U256::byte(tos, s));
  TINYEVM_OP(Shl) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shl_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Shr) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shr_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Sar) TINYEVM_BINARY(tos = U256::sar(tos, s));
  TINYEVM_OP(SignExtend) TINYEVM_BINARY(tos = U256::signextend(tos, s));

#undef TINYEVM_BINARY

  TINYEVM_OP(AddMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MulMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Exp) { TINYEVM_SYNCED(op_exp()); }
  TINYEVM_NEXT;

  TINYEVM_OP(IsZero) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{tos.is_zero() ? 1ULL : 0ULL};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Not) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos.not_assign();
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Sensor) { TINYEVM_SYNCED(op_sensor()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Sha3) { TINYEVM_SYNCED(op_sha3()); }
  TINYEVM_NEXT;

  // --- environment ---
  TINYEVM_OP(Address) { TINYEVM_PUSH(U256::from_bytes(msg_.self)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Origin) { TINYEVM_PUSH(U256::from_bytes(msg_.origin)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Caller) { TINYEVM_PUSH(U256::from_bytes(msg_.caller)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallValue) { TINYEVM_PUSH(msg_.value); }
  TINYEVM_NEXT;
  TINYEVM_OP(Balance) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.balance(to_address(tos));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = calldata_word(tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataSize) { TINYEVM_PUSH(U256{msg_.data.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeSize) { TINYEVM_PUSH(U256{msg_.code.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataSize) { TINYEVM_PUSH(U256{return_data_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataCopy) { TINYEVM_SYNCED(op_copy(msg_.data, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeCopy) { TINYEVM_SYNCED(op_copy(msg_.code, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataCopy) { TINYEVM_SYNCED(op_copy(return_data_, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasPrice) { TINYEVM_PUSH(U256{1}); }  // flat simulated price
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeSize) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{host_.code_at(to_address(tos)).size()};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeCopy) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address addr = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    TINYEVM_SYNCED(op_copy(host_.code_at(addr), true));
  }
  TINYEVM_NEXT;

  // --- block data ---
  TINYEVM_OP(BlockHash) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = tos.fits_u64() ? U256::from_bytes(host_.block_hash(tos.as_u64()))
                         : U256{};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Coinbase) {
    TINYEVM_PUSH(U256::from_bytes(host_.block_info().coinbase));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Timestamp) { TINYEVM_PUSH(U256{host_.block_info().timestamp}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Number) { TINYEVM_PUSH(U256{host_.block_info().number}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Difficulty) { TINYEVM_PUSH(host_.block_info().difficulty); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasLimit) { TINYEVM_PUSH(U256{host_.block_info().gas_limit}); }
  TINYEVM_NEXT;

  // --- stack / memory / storage / control flow ---
  TINYEVM_OP(Pop) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    tos = memory_.load_word(off);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    memory_.store_word(off, sb[sp - 2]);
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore8) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 1));
    if (!ok) TINYEVM_NEXT;
    memory_.store_byte(off, static_cast<std::uint8_t>(sb[sp - 2].limb(0) &
                                                      0xFF));
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.sload(msg_.self, tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SStore) { TINYEVM_SYNCED(op_sstore()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Jump) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64() || !analysis_->valid_jumpdest(tos.as_u64())) {
      fail(Status::InvalidJump);
      TINYEVM_NEXT;
    }
    pc = tos.as_u64();
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpI) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const bool taken = !sb[sp - 2].is_zero();
    const bool dest_ok = tos.fits_u64();
    const std::uint64_t dest = tos.as_u64();
    sp -= 2;
    tos = sb[sp - 1];
    if (taken) {
      if (!dest_ok || !analysis_->valid_jumpdest(dest)) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      pc = dest;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Pc) { TINYEVM_PUSH(U256{pc - 1}); }
  TINYEVM_NEXT;
  TINYEVM_OP(MSize) { TINYEVM_PUSH(U256{memory_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Gas) {
    TINYEVM_PUSH(U256{static_cast<std::uint64_t>(gas > 0 ? gas : 0)});
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpDest) {}
  TINYEVM_NEXT;

  // --- stack families (index in e->aux) ---
  TINYEVM_OP(Push) {
    const unsigned n = e->aux;
    const U256 v =
        load_push(code + pc, pc < code_size ? code_size - pc : 0, n);
    pc += n;
    TINYEVM_PUSH(v);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Dup) {
    const unsigned n = e->aux;
    if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    // Macro-op fusion: DUP1 immediately followed by MUL/ADD (the squaring
    // and doubling accumulation patterns) nets out to `top = top (x) top`
    // with the stack pointer unchanged, so the pair runs entirely in the
    // tos registers — no spill, no reload. Both ops are accounted exactly
    // as if executed separately; if the second op would trip gas or the
    // watchdog, fall through to the plain DUP so the failure point and
    // counters match the unfused path bit-for-bit.
    if (n == 1 && pc < code_size) {
      const DispatchEntry& ne = entries[code[pc]];
      if ((ne.handler == Handler::Mul || ne.handler == Handler::Add) &&
          (!metered || gas >= ne.gas) && ops < ops_cap) {
        if (metered) gas -= ne.gas;
        cyc += ne.cycles;
        ++ops;
        ++pc;
        if (sp + 1 > smax) smax = sp + 1;  // the transient DUP1 high-water
        if (ne.handler == Handler::Mul) {
          tos.mul_assign(tos);
        } else {
          tos.add_assign(tos);
        }
        TINYEVM_NEXT;
      }
    }
    sb[sp - 1] = tos;                 // spill; DUP1 keeps tos as-is
    if (n > 1) tos = sb[sp - n];
    ++sp;
    if (sp > smax) smax = sp;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Swap) {
    const unsigned n = e->aux;
    if (n + 1 > sp) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    U256& other = sb[sp - 1 - n];
    const U256 t = other;
    other = tos;
    tos = t;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Log) { TINYEVM_SYNCED(op_log(e->aux)); }
  TINYEVM_NEXT;

  // --- lifecycle ---
  TINYEVM_OP(Create) { TINYEVM_SYNCED(op_create()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Call) { TINYEVM_SYNCED(op_call(CallKind::Call)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallCode) { TINYEVM_SYNCED(op_call(CallKind::CallCode)); }
  TINYEVM_NEXT;
  TINYEVM_OP(DelegateCall) { TINYEVM_SYNCED(op_call(CallKind::DelegateCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(StaticCall) { TINYEVM_SYNCED(op_call(CallKind::StaticCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Return) { TINYEVM_SYNCED(op_return(false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Revert) { TINYEVM_SYNCED(op_return(true)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Invalid) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SelfDestruct) {
    if (msg_.is_static) {
      fail(Status::StaticViolation);
      TINYEVM_NEXT;
    }
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address beneficiary = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    host_.self_destruct(msg_.self, beneficiary);
    done_ = true;
  }
  TINYEVM_NEXT;

  // Superinstructions exist only in pre-decoded streams; the raw dispatch
  // table never maps a code byte to them. Labels are kept so the jump
  // table built from TINYEVM_HANDLER_LIST stays total.
  TINYEVM_OP(PushBin) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(DupBin) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SwapBin) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJump) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJumpI) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;

#if !TINYEVM_COMPUTED_GOTO
    }  // switch
  }  // for
#endif

run_exit:
  pc_ = pc;
  gas_ = gas;
  cycles_ = cyc;
  ops_ = ops;
  sb[sp - 1] = tos;  // restore the flat-memory stack view
  stack_.set_state(sp, smax);

#undef TINYEVM_SYNCED
#undef TINYEVM_PUSH
#undef TINYEVM_PROLOGUE
#undef TINYEVM_OP
#undef TINYEVM_NEXT
}

// ---------------------------------------------------------------------------
// Pre-decoded interpreter loop
// ---------------------------------------------------------------------------
//
// Same token-threaded structure and register-cached state as the raw loop
// above, but iterating over a DecodedProgram: PUSH immediates are already
// U256 values, dynamic jumps resolve through the translation's pc->index
// map instead of a per-run bitmap, and the peephole superinstructions
// (PushBin/DupBin/SwapBin/PushJump/PushJumpI) execute fused pairs in one
// dispatch. Every fused handler accounts gas/cycles/ops and the transient
// stack high-water exactly as if the two opcodes ran separately, and falls
// back to executing only the first opcode when the second would trip gas,
// the watchdog, or a stack limit — the second instruction is still in the
// stream, so the fallback path and all failure points are bit-identical to
// the raw loop (held to that by tests/evm_dispatch_test.cpp).

void Frame::run_decoded() {
  const DecodedInst* const insts = decoded_->insts.data();
  const std::uint64_t inst_count = decoded_->insts.size();
  const std::uint32_t* const jmap = decoded_->jump_map.data();
  // Jump bounds come from the translation itself, not msg_.code: the two
  // are equal whenever the cache key was honest, and using the map's own
  // extent keeps a stale Message::code_hash memory-safe (a wrong
  // translation, never an out-of-bounds jump_map read).
  const std::uint64_t code_size = decoded_->code_size;
  const bool metered = config_.metering;
  const std::uint64_t ops_cap =
      config_.max_ops == 0 ? std::numeric_limits<std::uint64_t>::max()
                           : config_.max_ops;
  std::uint64_t ip = 0;
  const DecodedInst* e = nullptr;
  std::int64_t gas = gas_;
  std::uint64_t cyc = cycles_;
  std::uint64_t ops = ops_;
  U256* const sb = stack_.base();  // sb[-1] is a scratch word (see Stack)
  const std::size_t slimit = stack_.limit();
  std::size_t sp = stack_.size();
  std::size_t smax = stack_.max_pointer();
  U256 tos = sp != 0 ? sb[sp - 1] : U256{};
  // Check-elision state: span summaries the translate-time analyzer
  // attached to the translation. One bool folds the config gate and the
  // no-spans case out of the JumpDest hot path.
  const ElideSpan* const spans = decoded_->spans.data();
  const bool elide = config_.elide_checks && !decoded_->spans.empty();

#define TINYEVM_SYNCED(expr)        \
  do {                              \
    gas_ = gas;                     \
    cycles_ = cyc;                  \
    sb[sp - 1] = tos;               \
    stack_.set_state(sp, smax);     \
    expr;                           \
    gas = gas_;                     \
    cyc = cycles_;                  \
    sp = stack_.size();             \
    smax = stack_.max_pointer();    \
    tos = sb[sp - 1];               \
  } while (0)

#define TINYEVM_PUSH(v)             \
  do {                              \
    if (sp >= slimit) {             \
      fail(Status::StackOverflow);  \
    } else {                        \
      sb[sp - 1] = tos;             \
      tos = (v);                    \
      ++sp;                         \
      if (sp > smax) smax = sp;     \
    }                               \
  } while (0)

// Identical accounting order to the raw prologue: validity short-circuit,
// folded static gas, cycle model, watchdog, instruction-pointer advance.
#define TINYEVM_PROLOGUE()                                                  \
  if (done_ || ip >= inst_count) goto run_exit;                             \
  e = &insts[ip];                                                           \
  if (static_cast<std::uint8_t>(e->handler) <=                              \
      static_cast<std::uint8_t>(Handler::Forbidden)) {                      \
    fail(e->handler == Handler::Undefined ? Status::InvalidOpcode           \
                                          : Status::ForbiddenOpcode);       \
    goto run_exit;                                                          \
  }                                                                         \
  if (metered) {                                                            \
    gas -= e->gas;                                                          \
    if (gas < 0) {                                                          \
      fail(Status::OutOfGas);                                               \
      goto run_exit;                                                        \
    }                                                                       \
  }                                                                         \
  cyc += e->cycles;                                                         \
  if (++ops > ops_cap) {                                                    \
    fail(Status::WatchdogExpired);                                          \
    goto run_exit;                                                          \
  }                                                                         \
  ++ip;

// The run-time half of the fusion contract: the second opcode of a pair
// executes only if its prologue could not fail — gas affordable and the
// watchdog not at the boundary (stack preconditions are checked by each
// fused handler). Mirrors the raw loop's DUP1+MUL/ADD fusion guard.
#define TINYEVM_FUSE_OK() ((!metered || gas >= e->gas2) && ops < ops_cap)

// Charges the fused second opcode exactly as its own prologue would.
#define TINYEVM_FUSE_CHARGE()       \
  do {                              \
    if (metered) gas -= e->gas2;    \
    cyc += e->cycles2;              \
    ++ops;                          \
  } while (0)

// Applies a fused binary operator in place: `tos = first ⊗ tos`. The
// hottest operators (ADD/MUL/SUB and the bitwise trio) are special-cased
// so the squaring/doubling/counting patterns stay entirely in the tos
// registers, exactly like the raw loop's DUP1+MUL/ADD fusion; the long
// tail goes through the generic apply_fused_bin switch. Parameterized on
// the second-opcode handler so both the checked superinstruction handlers
// (which read e->aux2) and the span interpreter (bi->aux2) share it.
#define TINYEVM_APPLY_BIN(op2v, first)                   \
  do {                                                   \
    const Handler op2 = (op2v);                          \
    if (op2 == Handler::Add) {                           \
      tos.add_assign(first);                             \
    } else if (op2 == Handler::Mul) {                    \
      tos.mul_assign(first);                             \
    } else if (op2 == Handler::Sub) {                    \
      tos.rsub_assign(first); /* tos = first - tos */    \
    } else if (op2 == Handler::Xor) {                    \
      tos.xor_assign(first);                             \
    } else if (op2 == Handler::And) {                    \
      tos.and_assign(first);                             \
    } else if (op2 == Handler::Or) {                     \
      tos.or_assign(first);                              \
    } else {                                             \
      U256 fused_a = (first);                            \
      apply_fused_bin(op2, fused_a, tos);                \
      tos = fused_a;                                     \
    }                                                    \
  } while (0)

#define TINYEVM_FUSED_APPLY(first) \
  TINYEVM_APPLY_BIN(static_cast<Handler>(e->aux2), first)

// --- check-elided span interpreter (see analysis.hpp) ---------------------
//
// The bodies below are the checked handlers with their guards deleted and
// nothing else changed: the span entry test proves every per-instruction
// stack/gas/watchdog branch in the run would pass, so eliding them cannot
// change results. sb[sp - 1] stores into the scratch word when sp == 0
// (legal; see Stack), and smax is settled once at entry from the proven
// transient peak.
#define TINYEVM_SPAN_BIN(name, body) \
  case Handler::name: {              \
    const U256& s = sb[sp - 2];      \
    body;                            \
    --sp;                            \
  } break;

#define TINYEVM_SPAN_PUSH(v) \
  sb[sp - 1] = tos;          \
  tos = (v);                 \
  ++sp;                      \
  break;

// One test per block: when the whole elidable run after a leader is
// provably free of stack/gas/watchdog faults, bulk-charge its summary and
// execute the body with per-instruction checks compiled out. When the
// test fails, nothing happens — the checked handlers run as before and
// reproduce the exact failure point, so status, gas, stats, and logs are
// bit-identical either way. Every charge below equals the sum of the
// per-instruction prologues it replaces (fused pairs count both halves),
// and the entry conditions imply each replaced check passes:
//   sp >= stack_require        -> no underflow anywhere in the run
//   sp + stack_peak <= slimit  -> no overflow at any transient height
//   gas >= static_gas          -> every prefix of the run is affordable
//   ops + span.ops <= ops_cap  -> the watchdog stays clear of every ++ops
#define TINYEVM_TRY_SPAN(span_index)                                        \
  do {                                                                      \
    const ElideSpan& bs = spans[span_index];                                \
    if (sp >= bs.stack_require && bs.stack_peak <= slimit - sp &&           \
        (!metered || gas >= static_cast<std::int64_t>(bs.static_gas)) &&    \
        bs.ops <= ops_cap - ops) {                                          \
      if (metered) gas -= static_cast<std::int64_t>(bs.static_gas);         \
      cyc += bs.cycles;                                                     \
      ops += bs.ops;                                                        \
      if (sp + bs.stack_peak > smax) smax = sp + bs.stack_peak;             \
      const DecodedInst* bi = insts + bs.first;                             \
      const DecodedInst* const bi_end = bi + bs.count;                      \
      for (; bi != bi_end; ++bi) {                                          \
        switch (bi->handler) {                                              \
          TINYEVM_SPAN_BIN(Add, tos.add_assign(s))                          \
          TINYEVM_SPAN_BIN(Mul, tos.mul_assign(s))                          \
          TINYEVM_SPAN_BIN(Sub, tos.sub_assign(s))                          \
          TINYEVM_SPAN_BIN(Div, tos = tos / s)                              \
          TINYEVM_SPAN_BIN(Sdiv, tos = U256::sdiv(tos, s))                  \
          TINYEVM_SPAN_BIN(Mod, tos = tos % s)                              \
          TINYEVM_SPAN_BIN(Smod, tos = U256::smod(tos, s))                  \
          TINYEVM_SPAN_BIN(Lt, tos = U256{tos < s ? 1ULL : 0ULL})           \
          TINYEVM_SPAN_BIN(Gt, tos = U256{tos > s ? 1ULL : 0ULL})           \
          TINYEVM_SPAN_BIN(Slt,                                             \
                           tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL})     \
          TINYEVM_SPAN_BIN(Sgt,                                             \
                           tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL})     \
          TINYEVM_SPAN_BIN(Eq, tos = U256{tos == s ? 1ULL : 0ULL})          \
          TINYEVM_SPAN_BIN(And, tos.and_assign(s))                          \
          TINYEVM_SPAN_BIN(Or, tos.or_assign(s))                            \
          TINYEVM_SPAN_BIN(Xor, tos.xor_assign(s))                          \
          TINYEVM_SPAN_BIN(Byte, tos = U256::byte(tos, s))                  \
          TINYEVM_SPAN_BIN(Shl, {                                           \
            const bool in_range = tos.fits_u64() && tos.as_u64() < 256;     \
            const unsigned sh = static_cast<unsigned>(tos.as_u64());        \
            if (in_range) {                                                 \
              tos = s;                                                      \
              tos.shl_assign(sh);                                           \
            } else {                                                        \
              tos = U256{};                                                 \
            }                                                               \
          })                                                                \
          TINYEVM_SPAN_BIN(Shr, {                                           \
            const bool in_range = tos.fits_u64() && tos.as_u64() < 256;     \
            const unsigned sh = static_cast<unsigned>(tos.as_u64());        \
            if (in_range) {                                                 \
              tos = s;                                                      \
              tos.shr_assign(sh);                                           \
            } else {                                                        \
              tos = U256{};                                                 \
            }                                                               \
          })                                                                \
          TINYEVM_SPAN_BIN(Sar, tos = U256::sar(tos, s))                    \
          TINYEVM_SPAN_BIN(SignExtend, tos = U256::signextend(tos, s))      \
          case Handler::AddMod:                                             \
            tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);                \
            sp -= 2;                                                        \
            break;                                                          \
          case Handler::MulMod:                                             \
            tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);                \
            sp -= 2;                                                        \
            break;                                                          \
          case Handler::IsZero:                                             \
            tos = U256{tos.is_zero() ? 1ULL : 0ULL};                        \
            break;                                                          \
          case Handler::Not:                                                \
            tos.not_assign();                                               \
            break;                                                          \
          case Handler::Address:                                            \
            TINYEVM_SPAN_PUSH(U256::from_bytes(msg_.self))                  \
          case Handler::Origin:                                             \
            TINYEVM_SPAN_PUSH(U256::from_bytes(msg_.origin))                \
          case Handler::Caller:                                             \
            TINYEVM_SPAN_PUSH(U256::from_bytes(msg_.caller))                \
          case Handler::CallValue:                                          \
            TINYEVM_SPAN_PUSH(msg_.value)                                   \
          case Handler::CallDataLoad:                                       \
            tos = calldata_word(tos);                                       \
            break;                                                          \
          case Handler::CallDataSize:                                       \
            TINYEVM_SPAN_PUSH(U256{msg_.data.size()})                       \
          case Handler::CodeSize:                                           \
            TINYEVM_SPAN_PUSH(U256{msg_.code.size()})                       \
          case Handler::ReturnDataSize:                                     \
            TINYEVM_SPAN_PUSH(U256{return_data_.size()})                    \
          case Handler::GasPrice:                                           \
            TINYEVM_SPAN_PUSH(U256{1})                                      \
          case Handler::Pop:                                                \
            --sp;                                                           \
            tos = sb[sp - 1];                                               \
            break;                                                          \
          case Handler::Pc:                                                 \
            TINYEVM_SPAN_PUSH(U256{bi->pc})                                 \
          case Handler::MSize:                                              \
            TINYEVM_SPAN_PUSH(U256{memory_.size()})                         \
          case Handler::Push:                                               \
            TINYEVM_SPAN_PUSH(bi->imm)                                      \
          case Handler::Dup: {                                              \
            const unsigned n = bi->aux;                                     \
            sb[sp - 1] = tos; /* spill; DUP1 keeps tos as-is */             \
            if (n > 1) tos = sb[sp - n];                                    \
            ++sp;                                                           \
          } break;                                                          \
          case Handler::Swap: {                                             \
            const unsigned n = bi->aux;                                     \
            U256& other = sb[sp - 1 - n];                                   \
            const U256 t = other;                                           \
            other = tos;                                                    \
            tos = t;                                                        \
          } break;                                                          \
          case Handler::PushBin:                                            \
            TINYEVM_APPLY_BIN(static_cast<Handler>(bi->aux2), bi->imm);     \
            ++bi; /* the fallback continuation never runs fused */          \
            break;                                                          \
          case Handler::DupBin: {                                           \
            const unsigned n = bi->aux;                                     \
            const U256& dup_val = n == 1 ? tos : sb[sp - n];                \
            TINYEVM_APPLY_BIN(static_cast<Handler>(bi->aux2), dup_val);     \
            ++bi;                                                           \
          } break;                                                          \
          case Handler::SwapBin:                                            \
            TINYEVM_APPLY_BIN(static_cast<Handler>(bi->aux2), sb[sp - 2]);  \
            --sp;                                                           \
            ++bi;                                                           \
            break;                                                          \
          default:                                                          \
            break; /* unreachable: spans hold elidable handlers only */     \
        }                                                                   \
      }                                                                     \
      /* Tail: the block's fused jump, when its target is statically       \
         valid. Mirrors the fused PushJump/PushJumpI handlers with the     \
         guards hoisted into the entry test (the transient push's          \
         high-water is folded into stack_peak above). */                   \
      if (bs.tail == kSpanTailNone) {                                       \
        ip = bs.first + bs.count;                                           \
      } else {                                                              \
        const DecodedInst* const tj = insts + bs.first + bs.count;          \
        if (bs.tail == kSpanTailJumpI) {                                    \
          const bool taken = !tos.is_zero();                                \
          --sp;                                                             \
          tos = sb[sp - 1];                                                 \
          ip = taken ? tj->target : bs.first + bs.count + 2;                \
        } else {                                                            \
          ip = tj->target;                                                  \
        }                                                                   \
      }                                                                     \
    }                                                                       \
  } while (0)

  // The entry block has no JUMPDEST to hang its span on; test it before
  // the first dispatch (ip is still 0, so a pass skips straight past the
  // covered run).
  if (elide && decoded_->entry_span != kNoJumpTarget) {
    TINYEVM_TRY_SPAN(decoded_->entry_span);
  }

#if TINYEVM_COMPUTED_GOTO
  static const void* const kJump[] = {
#define TINYEVM_H_LABEL(name) &&h_##name,
      TINYEVM_HANDLER_LIST(TINYEVM_H_LABEL)
#undef TINYEVM_H_LABEL
  };
#define TINYEVM_OP(name) h_##name:
#define TINYEVM_NEXT                                           \
  do {                                                         \
    TINYEVM_PROLOGUE()                                         \
    goto *kJump[static_cast<std::uint8_t>(e->handler)];        \
  } while (0)
  TINYEVM_NEXT;
#else
#define TINYEVM_OP(name) case Handler::name:
#define TINYEVM_NEXT break
  for (;;) {
    TINYEVM_PROLOGUE()
    switch (e->handler) {
#endif

  // Unreachable in practice — the prologue short-circuits these two — but
  // kept as real handlers so the jump table is total.
  TINYEVM_OP(Undefined) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(Forbidden) { fail(Status::ForbiddenOpcode); }
  TINYEVM_NEXT;

  TINYEVM_OP(Stop) { done_ = true; }
  TINYEVM_NEXT;

#define TINYEVM_BINARY(body)                    \
  {                                             \
    if (sp < 2) {                               \
      fail(Status::StackUnderflow);             \
      TINYEVM_NEXT;                             \
    }                                           \
    const U256& s = sb[sp - 2];                 \
    body;                                       \
    --sp;                                       \
  }                                             \
  TINYEVM_NEXT

  TINYEVM_OP(Add) TINYEVM_BINARY(tos.add_assign(s));
  TINYEVM_OP(Mul) TINYEVM_BINARY(tos.mul_assign(s));
  TINYEVM_OP(Sub) TINYEVM_BINARY(tos.sub_assign(s));  // tos = top - second
  TINYEVM_OP(Div) TINYEVM_BINARY(tos = tos / s);
  TINYEVM_OP(Sdiv) TINYEVM_BINARY(tos = U256::sdiv(tos, s));
  TINYEVM_OP(Mod) TINYEVM_BINARY(tos = tos % s);
  TINYEVM_OP(Smod) TINYEVM_BINARY(tos = U256::smod(tos, s));
  TINYEVM_OP(Lt) TINYEVM_BINARY(tos = U256{tos < s ? 1ULL : 0ULL});
  TINYEVM_OP(Gt) TINYEVM_BINARY(tos = U256{tos > s ? 1ULL : 0ULL});
  TINYEVM_OP(Slt) TINYEVM_BINARY(tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Sgt) TINYEVM_BINARY(tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Eq) TINYEVM_BINARY(tos = U256{tos == s ? 1ULL : 0ULL});
  TINYEVM_OP(And) TINYEVM_BINARY(tos.and_assign(s));
  TINYEVM_OP(Or) TINYEVM_BINARY(tos.or_assign(s));
  TINYEVM_OP(Xor) TINYEVM_BINARY(tos.xor_assign(s));
  TINYEVM_OP(Byte) TINYEVM_BINARY(tos = U256::byte(tos, s));
  TINYEVM_OP(Shl) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shl_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Shr) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shr_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Sar) TINYEVM_BINARY(tos = U256::sar(tos, s));
  TINYEVM_OP(SignExtend) TINYEVM_BINARY(tos = U256::signextend(tos, s));

#undef TINYEVM_BINARY

  TINYEVM_OP(AddMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MulMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Exp) { TINYEVM_SYNCED(op_exp()); }
  TINYEVM_NEXT;

  TINYEVM_OP(IsZero) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{tos.is_zero() ? 1ULL : 0ULL};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Not) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos.not_assign();
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Sensor) { TINYEVM_SYNCED(op_sensor()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Sha3) { TINYEVM_SYNCED(op_sha3()); }
  TINYEVM_NEXT;

  // --- environment ---
  TINYEVM_OP(Address) { TINYEVM_PUSH(U256::from_bytes(msg_.self)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Origin) { TINYEVM_PUSH(U256::from_bytes(msg_.origin)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Caller) { TINYEVM_PUSH(U256::from_bytes(msg_.caller)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallValue) { TINYEVM_PUSH(msg_.value); }
  TINYEVM_NEXT;
  TINYEVM_OP(Balance) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.balance(to_address(tos));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = calldata_word(tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataSize) { TINYEVM_PUSH(U256{msg_.data.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeSize) { TINYEVM_PUSH(U256{msg_.code.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataSize) { TINYEVM_PUSH(U256{return_data_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataCopy) { TINYEVM_SYNCED(op_copy(msg_.data, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeCopy) { TINYEVM_SYNCED(op_copy(msg_.code, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataCopy) { TINYEVM_SYNCED(op_copy(return_data_, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasPrice) { TINYEVM_PUSH(U256{1}); }  // flat simulated price
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeSize) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{host_.code_at(to_address(tos)).size()};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeCopy) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address addr = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    TINYEVM_SYNCED(op_copy(host_.code_at(addr), true));
  }
  TINYEVM_NEXT;

  // --- block data ---
  TINYEVM_OP(BlockHash) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = tos.fits_u64() ? U256::from_bytes(host_.block_hash(tos.as_u64()))
                         : U256{};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Coinbase) {
    TINYEVM_PUSH(U256::from_bytes(host_.block_info().coinbase));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Timestamp) { TINYEVM_PUSH(U256{host_.block_info().timestamp}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Number) { TINYEVM_PUSH(U256{host_.block_info().number}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Difficulty) { TINYEVM_PUSH(host_.block_info().difficulty); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasLimit) { TINYEVM_PUSH(U256{host_.block_info().gas_limit}); }
  TINYEVM_NEXT;

  // --- stack / memory / storage / control flow ---
  TINYEVM_OP(Pop) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    tos = memory_.load_word(off);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    memory_.store_word(off, sb[sp - 2]);
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore8) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 1));
    if (!ok) TINYEVM_NEXT;
    memory_.store_byte(off, static_cast<std::uint8_t>(sb[sp - 2].limb(0) &
                                                      0xFF));
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.sload(msg_.self, tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SStore) { TINYEVM_SYNCED(op_sstore()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Jump) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    // Same rule as the raw path's CodeAnalysis bitmap, resolved through
    // the translation's pc -> instruction-index map.
    const bool dest_ok = tos.fits_u64() && tos.as_u64() < code_size;
    const std::uint32_t t = dest_ok ? jmap[tos.as_u64()] : kNoJumpTarget;
    if (t == kNoJumpTarget) {
      fail(Status::InvalidJump);
      TINYEVM_NEXT;
    }
    ip = t;
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpI) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const bool taken = !sb[sp - 2].is_zero();
    const bool dest_ok = tos.fits_u64() && tos.as_u64() < code_size;
    const std::uint64_t dest = tos.as_u64();
    sp -= 2;
    tos = sb[sp - 1];
    if (taken) {
      const std::uint32_t t = dest_ok ? jmap[dest] : kNoJumpTarget;
      if (t == kNoJumpTarget) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      ip = t;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Pc) { TINYEVM_PUSH(U256{e->pc}); }
  TINYEVM_NEXT;
  TINYEVM_OP(MSize) { TINYEVM_PUSH(U256{memory_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Gas) {
    TINYEVM_PUSH(U256{static_cast<std::uint64_t>(gas > 0 ? gas : 0)});
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpDest) {
    // Block leader: e->target carries the block's span index when the
    // analyzer proved the following run elidable (kNoJumpTarget
    // otherwise — the field is unused by JUMPDEST's own semantics).
    if (elide && e->target != kNoJumpTarget) TINYEVM_TRY_SPAN(e->target);
  }
  TINYEVM_NEXT;

  // --- stack families (index in e->aux) ---
  TINYEVM_OP(Push) { TINYEVM_PUSH(e->imm); }
  TINYEVM_NEXT;
  TINYEVM_OP(Dup) {
    // No run-time peephole here: the translator already fused every
    // DUP+operator pair into DupBin below.
    const unsigned n = e->aux;
    if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    sb[sp - 1] = tos;  // spill; DUP1 keeps tos as-is
    if (n > 1) tos = sb[sp - n];
    ++sp;
    if (sp > smax) smax = sp;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Swap) {
    const unsigned n = e->aux;
    if (n + 1 > sp) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    U256& other = sb[sp - 1 - n];
    const U256 t = other;
    other = tos;
    tos = t;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Log) { TINYEVM_SYNCED(op_log(e->aux)); }
  TINYEVM_NEXT;

  // --- superinstructions (fused pairs; see the fusion contract above) ---
  //
  // Each fused body runs `tos = first ⊗ tos` in place via
  // TINYEVM_FUSED_APPLY / TINYEVM_APPLY_BIN (defined with the span
  // machinery above).
  TINYEVM_OP(PushBin) {
    // PUSHn imm; BINOP — the immediate is the first (top) operand.
    if (sp >= 1 && sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      ++ip;                              // consume the second instruction
      if (sp + 1 > smax) smax = sp + 1;  // the transient PUSH high-water
      TINYEVM_FUSED_APPLY(e->imm);
    } else {
      // Plain PUSH; the operator executes as its own instruction and
      // reproduces the exact unfused failure (underflow / gas / watchdog).
      TINYEVM_PUSH(e->imm);
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(DupBin) {
    // DUPn; BINOP — the duplicated value is the first operand.
    const unsigned n = e->aux;
    if (n <= sp && sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      ++ip;
      if (sp + 1 > smax) smax = sp + 1;
      // Aliasing is fine for n == 1: the *_assign ops are self-safe.
      const U256& dup_val = n == 1 ? tos : sb[sp - n];
      TINYEVM_FUSED_APPLY(dup_val);
    } else if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
    } else {
      sb[sp - 1] = tos;
      if (n > 1) tos = sb[sp - n];
      ++sp;
      if (sp > smax) smax = sp;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SwapBin) {
    // SWAP1; BINOP — the old second element becomes the first operand.
    if (sp >= 2 && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      ++ip;
      TINYEVM_FUSED_APPLY(sb[sp - 2]);
      --sp;
    } else if (sp < 2) {
      fail(Status::StackUnderflow);
    } else {
      const U256 t = sb[sp - 2];
      sb[sp - 2] = tos;
      tos = t;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJump) {
    // PUSHn dest; JUMP — target index resolved at translate time.
    if (sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      if (sp + 1 > smax) smax = sp + 1;
      if (e->target == kNoJumpTarget) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      ip = e->target;
    } else {
      TINYEVM_PUSH(e->imm);
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJumpI) {
    // PUSHn dest; JUMPI — the current top is the condition.
    if (sp >= 1 && sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      if (sp + 1 > smax) smax = sp + 1;
      const bool taken = !tos.is_zero();
      --sp;
      tos = sb[sp - 1];
      if (taken) {
        if (e->target == kNoJumpTarget) {
          fail(Status::InvalidJump);
          TINYEVM_NEXT;
        }
        ip = e->target;
      } else {
        ++ip;  // fall through past the JUMPI instruction
      }
    } else {
      TINYEVM_PUSH(e->imm);
    }
  }
  TINYEVM_NEXT;

  // --- lifecycle ---
  TINYEVM_OP(Create) { TINYEVM_SYNCED(op_create()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Call) { TINYEVM_SYNCED(op_call(CallKind::Call)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallCode) { TINYEVM_SYNCED(op_call(CallKind::CallCode)); }
  TINYEVM_NEXT;
  TINYEVM_OP(DelegateCall) { TINYEVM_SYNCED(op_call(CallKind::DelegateCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(StaticCall) { TINYEVM_SYNCED(op_call(CallKind::StaticCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Return) { TINYEVM_SYNCED(op_return(false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Revert) { TINYEVM_SYNCED(op_return(true)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Invalid) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SelfDestruct) {
    if (msg_.is_static) {
      fail(Status::StaticViolation);
      TINYEVM_NEXT;
    }
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address beneficiary = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    host_.self_destruct(msg_.self, beneficiary);
    done_ = true;
  }
  TINYEVM_NEXT;

#if !TINYEVM_COMPUTED_GOTO
    }  // switch
  }  // for
#endif

run_exit:
  if (e != nullptr) pc_ = e->pc;
  gas_ = gas;
  cycles_ = cyc;
  ops_ = ops;
  sb[sp - 1] = tos;  // restore the flat-memory stack view
  stack_.set_state(sp, smax);

#undef TINYEVM_SYNCED
#undef TINYEVM_PUSH
#undef TINYEVM_PROLOGUE
#undef TINYEVM_FUSE_OK
#undef TINYEVM_FUSE_CHARGE
#undef TINYEVM_APPLY_BIN
#undef TINYEVM_FUSED_APPLY
#undef TINYEVM_SPAN_BIN
#undef TINYEVM_SPAN_PUSH
#undef TINYEVM_TRY_SPAN
#undef TINYEVM_OP
#undef TINYEVM_NEXT
}

void Frame::op_exp() {
  const auto base = pop();
  const auto e = pop();
  if (!base || !e) return;
  const unsigned exp_bytes = e->byte_length();
  if (!charge(static_cast<std::int64_t>(50) * exp_bytes)) {
    fail(Status::OutOfGas);
    return;
  }
  cycles_ += 900ULL * exp_bytes;  // square-and-multiply per exponent byte
  push(U256::exp(*base, *e));
}

void Frame::op_sensor() {
  if (config_.profile != VmProfile::TinyEvm || !config_.iot_opcodes) {
    fail(Status::InvalidOpcode);
    return;
  }
  if (msg_.is_static) {
    // Reads are pure but actuation mutates the world; the selector decides,
    // so conservatively forbid both under STATICCALL.
    fail(Status::StaticViolation);
    return;
  }
  const auto selector = pop();
  const auto param = pop();
  if (!selector || !param) return;
  SensorRequest req;
  req.actuate = selector->bit(0);
  req.device_id = static_cast<std::uint32_t>((selector->limb(0) >> 1) &
                                             0x7FFFFFFFULL);
  req.parameter = *param;
  const auto reading = host_.sensor_access(req);
  if (!reading) {
    fail(Status::SensorFailure);
    return;
  }
  push(*reading);
}

void Frame::op_sha3() {
  const auto range = pop_range();
  if (!range) return;
  const std::uint64_t words = (range->len + 31) / 32;
  if (!charge(static_cast<std::int64_t>(6 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  cycles_ += 3200ULL * words;  // software keccak absorb cost per word
  const Bytes data = memory_.read(range->offset, range->len);
  push(U256::from_bytes(keccak256(data)));
}

void Frame::op_copy(std::span<const std::uint8_t> src, bool /*external*/) {
  const auto dst = pop();
  const auto src_off = pop();
  const auto len = pop();
  if (!dst || !src_off || !len) return;
  if (len->is_zero()) return;
  if (!dst->fits_u64() || !len->fits_u64()) {
    fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
    return;
  }
  const std::uint64_t n = len->as_u64();
  const std::uint64_t words = (n + 31) / 32;
  if (!charge(static_cast<std::int64_t>(3 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(dst->as_u64(), n)) return;
  cycles_ += 6ULL * n;  // ~6 cycles/byte memcpy on the M3
  memory_.store_bytes(dst->as_u64(), src,
                      src_off->fits_u64() ? src_off->as_u64() : src.size(),
                      n);
}

void Frame::op_log(unsigned topic_count) {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto range = pop_range();
  if (!range) return;
  LogEntry entry;
  entry.address = msg_.self;
  for (unsigned i = 0; i < topic_count; ++i) {
    const auto t = pop();
    if (!t) return;
    entry.topics.push_back(*t);
  }
  if (!charge(static_cast<std::int64_t>(8 * range->len))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  entry.data = memory_.read(range->offset, range->len);
  host_.emit_log(std::move(entry));
}

void Frame::op_sstore() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto key = pop();
  const auto value = pop();
  if (!key || !value) return;
  if (!host_.sstore(msg_.self, *key, *value)) {
    fail(Status::StorageExhausted);
    return;
  }
}

void Frame::op_create() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto value = pop();
  if (!value) return;
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;

  CreateRequest req;
  req.sender = msg_.self;
  req.value = *value;
  req.init_code = memory_.read(range->offset, range->len);
  req.gas = gas_;
  req.depth = msg_.depth + 1;
  const CreateResult res = host_.create(req);
  if (config_.metering) gas_ = res.gas_left;
  push(res.success ? U256::from_bytes(res.address) : U256{});
}

void Frame::op_call(CallKind kind) {
  const auto gas_arg = pop();
  const auto to_arg = pop();
  if (!gas_arg || !to_arg) return;

  U256 value;
  if (kind == CallKind::Call || kind == CallKind::CallCode) {
    const auto v = pop();
    if (!v) return;
    value = *v;
  }
  if (kind == CallKind::Call && msg_.is_static && !value.is_zero()) {
    fail(Status::StaticViolation);
    return;
  }

  const auto in = pop_range();
  if (!in) return;
  const auto out = pop_range();
  if (!out) return;
  if (!grow(in->offset, in->len)) return;
  if (!grow(out->offset, out->len)) return;

  CallRequest req;
  req.kind = kind;
  req.to = to_address(*to_arg);
  req.sender = kind == CallKind::DelegateCall ? msg_.caller : msg_.self;
  req.value = kind == CallKind::DelegateCall ? msg_.value : value;
  req.data = memory_.read(in->offset, in->len);
  req.depth = msg_.depth + 1;
  req.is_static = msg_.is_static || kind == CallKind::StaticCall;
  // 63/64 rule when metering; otherwise pass the requested gas through.
  const std::int64_t available = config_.metering ? gas_ - gas_ / 64 : gas_;
  req.gas = gas_arg->fits_u64() && static_cast<std::int64_t>(
                                       gas_arg->as_u64()) < available
                ? static_cast<std::int64_t>(gas_arg->as_u64())
                : available;

  const CallResult res = host_.call(req);
  return_data_ = res.output;
  if (config_.metering) {
    gas_ -= req.gas - res.gas_left;
    if (gas_ < 0) {
      fail(Status::OutOfGas);
      return;
    }
  }
  const std::uint64_t n = std::min<std::uint64_t>(out->len, res.output.size());
  if (n > 0) memory_.store_bytes(out->offset, res.output, 0, n);
  push(U256{res.success ? 1ULL : 0ULL});
}

void Frame::op_return(bool revert) {
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;
  output_ = memory_.read(range->offset, range->len);
  status_ = revert ? Status::Revert : Status::Success;
  done_ = true;
}

}  // namespace

Vm::Vm(VmConfig config, std::shared_ptr<CodeCache> cache)
    : config_(config),
      dispatch_(std::make_shared<const DispatchTable>(
          build_dispatch_table(config))),
      cache_(cache ? std::move(cache) : CodeCache::shared_default()) {}

ExecResult Vm::execute(Host& host, const Message& msg) const {
  // Default path: execute the cached pre-decoded stream. A null program
  // (predecode off, empty code, or code past the cache's size cap) falls
  // back to the raw threaded loop, which decodes per run.
  std::shared_ptr<const DecodedProgram> program;
  if (config_.predecode) {
    const TranslationProfile profile{
        config_.profile == VmProfile::TinyEvm, config_.iot_opcodes,
        config_.block_opcodes};
    program = cache_->get_or_translate(
        msg.code, profile, msg.code_hash ? &*msg.code_hash : nullptr);
  }
  Frame frame(config_, *dispatch_, host, msg, program.get());
  return frame.run();
}

}  // namespace tinyevm::evm
