#include "evm/vm.hpp"

#include <cstring>
#include <limits>

#include "crypto/hash.hpp"

// Token-threaded dispatch (GCC/Clang): one 256-entry table maps each code
// byte to a handler label plus its folded static gas / cycle model, and
// `goto *table[...]` jumps straight to the handler. Other compilers fall
// back to a single dense switch over the same table, which they compile to
// one jump table — still strictly flatter than the legacy two-level switch.
#if defined(__GNUC__) || defined(__clang__)
#define TINYEVM_COMPUTED_GOTO 1
#else
#define TINYEVM_COMPUTED_GOTO 0
#endif

namespace tinyevm::evm {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Success: return "success";
    case Status::Revert: return "revert";
    case Status::OutOfGas: return "out of gas";
    case Status::StackOverflow: return "stack overflow";
    case Status::StackUnderflow: return "stack underflow";
    case Status::OutOfMemory: return "out of memory";
    case Status::StorageExhausted: return "storage exhausted";
    case Status::InvalidJump: return "invalid jump";
    case Status::InvalidOpcode: return "invalid opcode";
    case Status::ForbiddenOpcode: return "forbidden opcode";
    case Status::SensorFailure: return "sensor failure";
    case Status::CallDepthExceeded: return "call depth exceeded";
    case Status::StaticViolation: return "static violation";
    case Status::WatchdogExpired: return "watchdog expired";
  }
  return "unknown";
}

CodeAnalysis::CodeAnalysis(std::span<const std::uint8_t> code)
    : jumpdest_(code.size(), false) {
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const std::uint8_t op = code[pc];
    if (op == static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      jumpdest_[pc] = true;
    } else if (is_push(op)) {
      pc += push_size(op);  // immediates are data, never jump targets
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch table
// ---------------------------------------------------------------------------

// Every executable action the interpreter knows, one label each. The first
// two entries are the failure routes the dispatch prologue short-circuits
// (invalid byte / profile-forbidden opcode); they must stay at ordinals 0
// and 1. PUSH/DUP/SWAP/LOG families collapse to one handler with the
// family index carried in DispatchEntry::aux.
#define TINYEVM_HANDLER_LIST(X)                                              \
  X(Undefined) X(Forbidden)                                                  \
  X(Stop) X(Add) X(Mul) X(Sub) X(Div) X(Sdiv) X(Mod) X(Smod) X(AddMod)       \
  X(MulMod) X(Exp) X(SignExtend) X(Lt) X(Gt) X(Slt) X(Sgt) X(Eq) X(IsZero)   \
  X(And) X(Or) X(Xor) X(Not) X(Byte) X(Shl) X(Shr) X(Sar) X(Sensor) X(Sha3)  \
  X(Address) X(Balance) X(Origin) X(Caller) X(CallValue) X(CallDataLoad)     \
  X(CallDataSize) X(CallDataCopy) X(CodeSize) X(CodeCopy) X(GasPrice)        \
  X(ExtCodeSize) X(ExtCodeCopy) X(ReturnDataSize) X(ReturnDataCopy)          \
  X(BlockHash) X(Coinbase) X(Timestamp) X(Number) X(Difficulty) X(GasLimit)  \
  X(Pop) X(MLoad) X(MStore) X(MStore8) X(SLoad) X(SStore) X(Jump) X(JumpI)   \
  X(Pc) X(MSize) X(Gas) X(JumpDest)                                          \
  X(Push) X(Dup) X(Swap) X(Log)                                              \
  X(Create) X(Call) X(CallCode) X(DelegateCall) X(StaticCall) X(Return)      \
  X(Revert) X(Invalid) X(SelfDestruct)

enum class Handler : std::uint8_t {
#define TINYEVM_H_ENUM(name) name,
  TINYEVM_HANDLER_LIST(TINYEVM_H_ENUM)
#undef TINYEVM_H_ENUM
};

/// One table slot: handler id, family index (PUSH width / DUP-SWAP depth /
/// LOG topic count), and the per-opcode static gas and MCU-cycle model
/// folded in so the hot loop does a single 8-byte load per opcode.
struct DispatchEntry {
  Handler handler = Handler::Undefined;
  std::uint8_t aux = 0;
  std::uint16_t gas = 0;
  std::uint32_t cycles = 0;
};
static_assert(sizeof(DispatchEntry) == 8);

struct DispatchTable {
  std::array<DispatchEntry, 256> entries{};
};

namespace {

Handler exec_handler(std::uint8_t op) {
  if (is_push(op)) return Handler::Push;
  if (is_dup(op)) return Handler::Dup;
  if (is_swap(op)) return Handler::Swap;
  if (is_log(op)) return Handler::Log;
  switch (static_cast<Opcode>(op)) {
    case Opcode::STOP: return Handler::Stop;
    case Opcode::ADD: return Handler::Add;
    case Opcode::MUL: return Handler::Mul;
    case Opcode::SUB: return Handler::Sub;
    case Opcode::DIV: return Handler::Div;
    case Opcode::SDIV: return Handler::Sdiv;
    case Opcode::MOD: return Handler::Mod;
    case Opcode::SMOD: return Handler::Smod;
    case Opcode::ADDMOD: return Handler::AddMod;
    case Opcode::MULMOD: return Handler::MulMod;
    case Opcode::EXP: return Handler::Exp;
    case Opcode::SIGNEXTEND: return Handler::SignExtend;
    case Opcode::SENSOR: return Handler::Sensor;
    case Opcode::LT: return Handler::Lt;
    case Opcode::GT: return Handler::Gt;
    case Opcode::SLT: return Handler::Slt;
    case Opcode::SGT: return Handler::Sgt;
    case Opcode::EQ: return Handler::Eq;
    case Opcode::ISZERO: return Handler::IsZero;
    case Opcode::AND: return Handler::And;
    case Opcode::OR: return Handler::Or;
    case Opcode::XOR: return Handler::Xor;
    case Opcode::NOT: return Handler::Not;
    case Opcode::BYTE: return Handler::Byte;
    case Opcode::SHL: return Handler::Shl;
    case Opcode::SHR: return Handler::Shr;
    case Opcode::SAR: return Handler::Sar;
    case Opcode::SHA3: return Handler::Sha3;
    case Opcode::ADDRESS: return Handler::Address;
    case Opcode::BALANCE: return Handler::Balance;
    case Opcode::ORIGIN: return Handler::Origin;
    case Opcode::CALLER: return Handler::Caller;
    case Opcode::CALLVALUE: return Handler::CallValue;
    case Opcode::CALLDATALOAD: return Handler::CallDataLoad;
    case Opcode::CALLDATASIZE: return Handler::CallDataSize;
    case Opcode::CALLDATACOPY: return Handler::CallDataCopy;
    case Opcode::CODESIZE: return Handler::CodeSize;
    case Opcode::CODECOPY: return Handler::CodeCopy;
    case Opcode::GASPRICE: return Handler::GasPrice;
    case Opcode::EXTCODESIZE: return Handler::ExtCodeSize;
    case Opcode::EXTCODECOPY: return Handler::ExtCodeCopy;
    case Opcode::RETURNDATASIZE: return Handler::ReturnDataSize;
    case Opcode::RETURNDATACOPY: return Handler::ReturnDataCopy;
    case Opcode::BLOCKHASH: return Handler::BlockHash;
    case Opcode::COINBASE: return Handler::Coinbase;
    case Opcode::TIMESTAMP: return Handler::Timestamp;
    case Opcode::NUMBER: return Handler::Number;
    case Opcode::DIFFICULTY: return Handler::Difficulty;
    case Opcode::GASLIMIT: return Handler::GasLimit;
    case Opcode::POP: return Handler::Pop;
    case Opcode::MLOAD: return Handler::MLoad;
    case Opcode::MSTORE: return Handler::MStore;
    case Opcode::MSTORE8: return Handler::MStore8;
    case Opcode::SLOAD: return Handler::SLoad;
    case Opcode::SSTORE: return Handler::SStore;
    case Opcode::JUMP: return Handler::Jump;
    case Opcode::JUMPI: return Handler::JumpI;
    case Opcode::PC: return Handler::Pc;
    case Opcode::MSIZE: return Handler::MSize;
    case Opcode::GAS: return Handler::Gas;
    case Opcode::JUMPDEST: return Handler::JumpDest;
    case Opcode::CREATE: return Handler::Create;
    case Opcode::CALL: return Handler::Call;
    case Opcode::CALLCODE: return Handler::CallCode;
    case Opcode::DELEGATECALL: return Handler::DelegateCall;
    case Opcode::STATICCALL: return Handler::StaticCall;
    case Opcode::RETURN: return Handler::Return;
    case Opcode::REVERT: return Handler::Revert;
    case Opcode::INVALID: return Handler::Invalid;
    case Opcode::SELFDESTRUCT: return Handler::SelfDestruct;
    default: return Handler::Undefined;
  }
}

DispatchTable build_dispatch_table(const VmConfig& config) {
  DispatchTable table;
  const bool tiny = config.profile == VmProfile::TinyEvm;
  for (unsigned i = 0; i < 256; ++i) {
    const auto op = static_cast<std::uint8_t>(i);
    DispatchEntry& e = table.entries[i];
    switch (classify(op, tiny, config.iot_opcodes, config.block_opcodes)) {
      case OpValidity::Undefined:
        e.handler = Handler::Undefined;
        continue;
      case OpValidity::Forbidden:
        e.handler = Handler::Forbidden;
        continue;
      case OpValidity::Ok:
        break;
    }
    const OpInfo& inf = info(op);
    e.handler = exec_handler(op);
    e.gas = inf.base_gas;
    e.cycles = inf.mcu_cycles;
    if (is_push(op)) {
      e.aux = static_cast<std::uint8_t>(push_size(op));
    } else if (is_dup(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0x7f);
    } else if (is_swap(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0x8f);
    } else if (is_log(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0xa0);
    }
  }
  return table;
}

using u128 = unsigned __int128;

/// Builds the PUSH immediate straight from code bytes into limbs — no
/// 32-byte staging buffer. Bytes past the end of code read as zero.
inline U256 load_push(const std::uint8_t* p, std::uint64_t avail,
                      unsigned n) {
  std::uint64_t limbs[4] = {0, 0, 0, 0};
  for (unsigned j = 0; j < n; ++j) {
    const std::uint64_t b = j < avail ? p[j] : 0;
    const unsigned bitpos = 8 * (n - 1 - j);
    limbs[bitpos / 64] |= b << (bitpos % 64);
  }
  return U256{limbs[3], limbs[2], limbs[1], limbs[0]};
}

/// Low 160 bits of an EVM word as an address.
inline Address to_address(const U256& v) {
  Address addr{};
  const auto w = v.to_word();
  std::memcpy(addr.data(), w.data() + 12, 20);
  return addr;
}

/// Interpreter frame; created per message and torn down when the run ends.
class Frame {
 public:
  Frame(const VmConfig& config, const DispatchTable& table, Host& host,
        const Message& msg)
      : config_(config),
        table_(table),
        host_(host),
        msg_(msg),
        analysis_(msg.code),
        stack_(config.stack_limit),
        memory_(config.memory_limit),
        gas_(msg.gas) {}

  ExecResult run();

 private:
  // -- helpers --------------------------------------------------------
  [[nodiscard]] bool charge(std::int64_t amount) {
    if (!config_.metering) return true;
    gas_ -= amount;
    return gas_ >= 0;
  }

  /// Quadratic memory-expansion gas (Ethereum profile); hard cap check
  /// (TinyEVM profile) happens inside Memory::expand. Priced in 128-bit
  /// arithmetic: for offsets beyond ~2^37 the w*w term overflows 64 bits,
  /// and a wrapped cost would under-charge (or even *credit* gas) instead
  /// of running out — so compute exactly and out-of-gas on saturation.
  [[nodiscard]] bool charge_memory(std::uint64_t offset, std::uint64_t len) {
    if (len == 0) return true;
    if (!config_.metering) return true;
    const u128 end = static_cast<u128>(offset) + len;
    const u128 new_words = (end + 31) / 32;
    const u128 old_words = (memory_.size() + 31) / 32;
    if (new_words <= old_words) return true;
    const auto cost = [](u128 w) { return 3 * w + w * w / 512; };
    const u128 delta = cost(new_words) - cost(old_words);
    if (delta > static_cast<u128>(std::numeric_limits<std::int64_t>::max())) {
      return false;  // cost exceeds any possible gas budget
    }
    return charge(static_cast<std::int64_t>(delta));
  }

  /// Pops a memory (offset, length) pair, validating both fit in 64 bits.
  struct MemRange {
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::optional<MemRange> pop_range() {
    const auto off = stack_.pop();
    const auto len = stack_.pop();
    if (!off || !len) {
      fail(Status::StackUnderflow);
      return std::nullopt;
    }
    if (!len->is_zero() && (!off->fits_u64() || !len->fits_u64())) {
      fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
      return std::nullopt;
    }
    return MemRange{off->fits_u64() ? off->as_u64() : 0, len->as_u64()};
  }

  /// Prepares a memory range: expansion gas + hard-cap growth.
  bool grow(std::uint64_t offset, std::uint64_t len) {
    if (!charge_memory(offset, len)) {
      fail(Status::OutOfGas);
      return false;
    }
    if (!memory_.expand(offset, len)) {
      fail(Status::OutOfMemory);
      return false;
    }
    return true;
  }

  void fail(Status status) {
    status_ = status;
    done_ = true;
  }

  bool push(const U256& v) {
    if (!stack_.push(v)) {
      fail(Status::StackOverflow);
      return false;
    }
    return true;
  }

  std::optional<U256> pop() {
    auto v = stack_.pop();
    if (!v) fail(Status::StackUnderflow);
    return v;
  }

  void run_threaded();
#ifdef TINYEVM_LEGACY_DISPATCH
  void step();
#endif
  void op_sensor();
  void op_sha3();
  void op_copy(std::span<const std::uint8_t> src, bool external_code);
  void op_log(unsigned topic_count);
  void op_create();
  void op_call(CallKind kind);
  void op_return(bool revert);
  void op_sstore();
  void op_exp();

  // -- state ----------------------------------------------------------
  const VmConfig& config_;
  const DispatchTable& table_;
  Host& host_;
  const Message& msg_;
  CodeAnalysis analysis_;
  Stack stack_;
  Memory memory_;
  Bytes return_data_;  // last nested-call output (RETURNDATA*)
  Bytes output_;
  std::uint64_t pc_ = 0;
  std::int64_t gas_;
  std::uint64_t cycles_ = 0;
  std::uint64_t ops_ = 0;
  Status status_ = Status::Success;
  bool done_ = false;
};

ExecResult Frame::run() {
  if (msg_.depth > config_.max_call_depth) {
    return ExecResult{Status::CallDepthExceeded, {}, gas_, {}};
  }
#ifdef TINYEVM_LEGACY_DISPATCH
  if (config_.dispatch == DispatchKind::LegacySwitch) {
    while (!done_) {
      if (pc_ >= msg_.code.size()) break;  // implicit STOP
      step();
    }
  } else {
    run_threaded();
  }
#else
  run_threaded();
#endif
  ExecResult result;
  result.status = status_;
  result.output = std::move(output_);
  result.gas_left = status_ == Status::Success || status_ == Status::Revert
                        ? gas_
                        : 0;
  result.stats.max_stack_pointer = stack_.max_pointer();
  result.stats.peak_memory = memory_.peak();
  result.stats.ops_executed = ops_;
  result.stats.mcu_cycles = cycles_;
  return result;
}

// ---------------------------------------------------------------------------
// Token-threaded interpreter loop
// ---------------------------------------------------------------------------
//
// Per-opcode path: one table load, one (predictable) validity branch, the
// folded gas/cycle/watchdog accounting, then a direct jump to the handler.
// Handler ordering and failure statuses replicate the legacy switch
// byte-for-byte; the differential fuzz test in tests/evm_dispatch_test.cpp
// holds both paths to bit-identical results.
//
// Binary operators pop ONE operand and rewrite the second in place via
// Stack::top() and the U256 *_assign ops, eliminating the two
// optional<U256> round-trips and the result push of the legacy path.

void Frame::run_threaded() {
  const DispatchEntry* const entries = table_.entries.data();
  const std::uint8_t* const code = msg_.code.data();
  const std::uint64_t code_size = msg_.code.size();
  const bool metered = config_.metering;
  const std::uint64_t ops_cap =
      config_.max_ops == 0 ? std::numeric_limits<std::uint64_t>::max()
                           : config_.max_ops;
  std::uint64_t pc = 0;
  const DispatchEntry* e = nullptr;
  // Register-cached copies of the per-op hot state: the accounting
  // counters the dispatch prologue touches every opcode, the operand
  // stack (base/sp/high-water), and — crucially — the top-of-stack
  // *value* itself. With `tos` in registers a DUP1/binary-op pair runs
  // one store plus one load instead of chaining every operand through
  // memory. Invariant: when sp > 0 the logical top lives in `tos` and
  // base()[sp-1] is stale; TINYEVM_SYNCED restores the flat-memory view
  // around any helper call, and run_exit publishes the final state.
  std::int64_t gas = gas_;
  std::uint64_t cyc = cycles_;
  std::uint64_t ops = ops_;
  U256* const sb = stack_.base();  // sb[-1] is a scratch word (see Stack)
  const std::size_t slimit = stack_.limit();
  std::size_t sp = stack_.size();
  std::size_t smax = stack_.max_pointer();
  U256 tos = sp != 0 ? sb[sp - 1] : U256{};

#define TINYEVM_SYNCED(expr)        \
  do {                              \
    gas_ = gas;                     \
    cycles_ = cyc;                  \
    sb[sp - 1] = tos;               \
    stack_.set_state(sp, smax);     \
    expr;                           \
    gas = gas_;                     \
    cyc = cycles_;                  \
    sp = stack_.size();             \
    smax = stack_.max_pointer();    \
    tos = sb[sp - 1];               \
  } while (0)

// Stack push against the cached registers; overflow fails the frame (the
// following dispatch notices done_), matching Frame::push.
#define TINYEVM_PUSH(v)             \
  do {                              \
    if (sp >= slimit) {             \
      fail(Status::StackOverflow);  \
    } else {                        \
      sb[sp - 1] = tos;             \
      tos = (v);                    \
      ++sp;                         \
      if (sp > smax) smax = sp;     \
    }                               \
  } while (0)

// The prologue every opcode runs: bounds/halt check, table load, validity
// short-circuit, folded static gas, cycle model, watchdog, pc advance.
#define TINYEVM_PROLOGUE()                                                  \
  if (done_ || pc >= code_size) goto run_exit;                              \
  e = &entries[code[pc]];                                                   \
  if (static_cast<std::uint8_t>(e->handler) <=                              \
      static_cast<std::uint8_t>(Handler::Forbidden)) {                      \
    fail(e->handler == Handler::Undefined ? Status::InvalidOpcode           \
                                          : Status::ForbiddenOpcode);       \
    goto run_exit;                                                          \
  }                                                                         \
  if (metered) {                                                            \
    gas -= e->gas;                                                          \
    if (gas < 0) {                                                          \
      fail(Status::OutOfGas);                                               \
      goto run_exit;                                                        \
    }                                                                       \
  }                                                                         \
  cyc += e->cycles;                                                         \
  if (++ops > ops_cap) {                                                    \
    fail(Status::WatchdogExpired);                                          \
    goto run_exit;                                                          \
  }                                                                         \
  ++pc;

#if TINYEVM_COMPUTED_GOTO
  static const void* const kJump[] = {
#define TINYEVM_H_LABEL(name) &&h_##name,
      TINYEVM_HANDLER_LIST(TINYEVM_H_LABEL)
#undef TINYEVM_H_LABEL
  };
#define TINYEVM_OP(name) h_##name:
// Token threading proper: every handler tail replicates the full dispatch
// sequence instead of jumping back to a single shared dispatch point, so
// the indirect branch predictor sees one site per handler and can learn
// the bytecode's opcode-pair patterns. (The evm module builds with
// -fno-crossjumping -fno-gcse under GCC so the copies stay distinct.)
#define TINYEVM_NEXT                                           \
  do {                                                         \
    TINYEVM_PROLOGUE()                                         \
    goto *kJump[static_cast<std::uint8_t>(e->handler)];        \
  } while (0)
  TINYEVM_NEXT;
#else
#define TINYEVM_OP(name) case Handler::name:
#define TINYEVM_NEXT break
  for (;;) {
    TINYEVM_PROLOGUE()
    switch (e->handler) {
#endif

  // Unreachable in practice — the prologue short-circuits these two — but
  // kept as real handlers so the jump table is total.
  TINYEVM_OP(Undefined) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(Forbidden) { fail(Status::ForbiddenOpcode); }
  TINYEVM_NEXT;

  TINYEVM_OP(Stop) { done_ = true; }
  TINYEVM_NEXT;

// Binary operators: the first operand is `tos` (in registers), `s` is the
// second operand's memory slot. The body leaves the result in `tos`; the
// pop is just --sp, so the pair costs one load instead of the legacy
// pop/pop/push round-trips.
#define TINYEVM_BINARY(body)                    \
  {                                             \
    if (sp < 2) {                               \
      fail(Status::StackUnderflow);             \
      TINYEVM_NEXT;                             \
    }                                           \
    const U256& s = sb[sp - 2];                 \
    body;                                       \
    --sp;                                       \
  }                                             \
  TINYEVM_NEXT

  TINYEVM_OP(Add) TINYEVM_BINARY(tos.add_assign(s));
  TINYEVM_OP(Mul) TINYEVM_BINARY(tos.mul_assign(s));
  TINYEVM_OP(Sub) TINYEVM_BINARY(tos.sub_assign(s));  // tos = top - second
  TINYEVM_OP(Div) TINYEVM_BINARY(tos = tos / s);
  TINYEVM_OP(Sdiv) TINYEVM_BINARY(tos = U256::sdiv(tos, s));
  TINYEVM_OP(Mod) TINYEVM_BINARY(tos = tos % s);
  TINYEVM_OP(Smod) TINYEVM_BINARY(tos = U256::smod(tos, s));
  TINYEVM_OP(Lt) TINYEVM_BINARY(tos = U256{tos < s ? 1ULL : 0ULL});
  TINYEVM_OP(Gt) TINYEVM_BINARY(tos = U256{tos > s ? 1ULL : 0ULL});
  TINYEVM_OP(Slt) TINYEVM_BINARY(tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Sgt) TINYEVM_BINARY(tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Eq) TINYEVM_BINARY(tos = U256{tos == s ? 1ULL : 0ULL});
  TINYEVM_OP(And) TINYEVM_BINARY(tos.and_assign(s));
  TINYEVM_OP(Or) TINYEVM_BINARY(tos.or_assign(s));
  TINYEVM_OP(Xor) TINYEVM_BINARY(tos.xor_assign(s));
  TINYEVM_OP(Byte) TINYEVM_BINARY(tos = U256::byte(tos, s));
  TINYEVM_OP(Shl) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shl_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Shr) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shr_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Sar) TINYEVM_BINARY(tos = U256::sar(tos, s));
  TINYEVM_OP(SignExtend) TINYEVM_BINARY(tos = U256::signextend(tos, s));

#undef TINYEVM_BINARY

  TINYEVM_OP(AddMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MulMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Exp) { TINYEVM_SYNCED(op_exp()); }
  TINYEVM_NEXT;

  TINYEVM_OP(IsZero) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{tos.is_zero() ? 1ULL : 0ULL};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Not) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos.not_assign();
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Sensor) { TINYEVM_SYNCED(op_sensor()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Sha3) { TINYEVM_SYNCED(op_sha3()); }
  TINYEVM_NEXT;

  // --- environment ---
  TINYEVM_OP(Address) { TINYEVM_PUSH(U256::from_bytes(msg_.self)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Origin) { TINYEVM_PUSH(U256::from_bytes(msg_.origin)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Caller) { TINYEVM_PUSH(U256::from_bytes(msg_.caller)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallValue) { TINYEVM_PUSH(msg_.value); }
  TINYEVM_NEXT;
  TINYEVM_OP(Balance) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.balance(to_address(tos));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    std::array<std::uint8_t, 32> buf{};
    // Bound i by the bytes remaining past o: `o + i` would wrap for
    // offsets near 2^64 and alias the start of calldata.
    if (tos.fits_u64() && tos.as_u64() < msg_.data.size()) {
      const std::uint64_t o = tos.as_u64();
      const std::uint64_t avail = msg_.data.size() - o;
      for (unsigned i = 0; i < 32 && i < avail; ++i) {
        buf[i] = msg_.data[o + i];
      }
    }
    tos = U256::from_word(buf);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataSize) { TINYEVM_PUSH(U256{msg_.data.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeSize) { TINYEVM_PUSH(U256{msg_.code.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataSize) { TINYEVM_PUSH(U256{return_data_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataCopy) { TINYEVM_SYNCED(op_copy(msg_.data, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeCopy) { TINYEVM_SYNCED(op_copy(msg_.code, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataCopy) { TINYEVM_SYNCED(op_copy(return_data_, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasPrice) { TINYEVM_PUSH(U256{1}); }  // flat simulated price
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeSize) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{host_.code_at(to_address(tos)).size()};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeCopy) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address addr = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    TINYEVM_SYNCED(op_copy(host_.code_at(addr), true));
  }
  TINYEVM_NEXT;

  // --- block data ---
  TINYEVM_OP(BlockHash) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = tos.fits_u64() ? U256::from_bytes(host_.block_hash(tos.as_u64()))
                         : U256{};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Coinbase) {
    TINYEVM_PUSH(U256::from_bytes(host_.block_info().coinbase));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Timestamp) { TINYEVM_PUSH(U256{host_.block_info().timestamp}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Number) { TINYEVM_PUSH(U256{host_.block_info().number}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Difficulty) { TINYEVM_PUSH(host_.block_info().difficulty); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasLimit) { TINYEVM_PUSH(U256{host_.block_info().gas_limit}); }
  TINYEVM_NEXT;

  // --- stack / memory / storage / control flow ---
  TINYEVM_OP(Pop) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    tos = memory_.load_word(off);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    memory_.store_word(off, sb[sp - 2]);
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore8) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 1));
    if (!ok) TINYEVM_NEXT;
    memory_.store_byte(off, static_cast<std::uint8_t>(sb[sp - 2].limb(0) &
                                                      0xFF));
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.sload(msg_.self, tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SStore) { TINYEVM_SYNCED(op_sstore()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Jump) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64() || !analysis_.valid_jumpdest(tos.as_u64())) {
      fail(Status::InvalidJump);
      TINYEVM_NEXT;
    }
    pc = tos.as_u64();
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpI) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const bool taken = !sb[sp - 2].is_zero();
    const bool dest_ok = tos.fits_u64();
    const std::uint64_t dest = tos.as_u64();
    sp -= 2;
    tos = sb[sp - 1];
    if (taken) {
      if (!dest_ok || !analysis_.valid_jumpdest(dest)) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      pc = dest;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Pc) { TINYEVM_PUSH(U256{pc - 1}); }
  TINYEVM_NEXT;
  TINYEVM_OP(MSize) { TINYEVM_PUSH(U256{memory_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Gas) {
    TINYEVM_PUSH(U256{static_cast<std::uint64_t>(gas > 0 ? gas : 0)});
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpDest) {}
  TINYEVM_NEXT;

  // --- stack families (index in e->aux) ---
  TINYEVM_OP(Push) {
    const unsigned n = e->aux;
    const U256 v =
        load_push(code + pc, pc < code_size ? code_size - pc : 0, n);
    pc += n;
    TINYEVM_PUSH(v);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Dup) {
    const unsigned n = e->aux;
    if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    // Macro-op fusion: DUP1 immediately followed by MUL/ADD (the squaring
    // and doubling accumulation patterns) nets out to `top = top (x) top`
    // with the stack pointer unchanged, so the pair runs entirely in the
    // tos registers — no spill, no reload. Both ops are accounted exactly
    // as if executed separately; if the second op would trip gas or the
    // watchdog, fall through to the plain DUP so the failure point and
    // counters match the unfused path bit-for-bit.
    if (n == 1 && pc < code_size) {
      const DispatchEntry& ne = entries[code[pc]];
      if ((ne.handler == Handler::Mul || ne.handler == Handler::Add) &&
          (!metered || gas >= ne.gas) && ops < ops_cap) {
        if (metered) gas -= ne.gas;
        cyc += ne.cycles;
        ++ops;
        ++pc;
        if (sp + 1 > smax) smax = sp + 1;  // the transient DUP1 high-water
        if (ne.handler == Handler::Mul) {
          tos.mul_assign(tos);
        } else {
          tos.add_assign(tos);
        }
        TINYEVM_NEXT;
      }
    }
    sb[sp - 1] = tos;                 // spill; DUP1 keeps tos as-is
    if (n > 1) tos = sb[sp - n];
    ++sp;
    if (sp > smax) smax = sp;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Swap) {
    const unsigned n = e->aux;
    if (n + 1 > sp) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    U256& other = sb[sp - 1 - n];
    const U256 t = other;
    other = tos;
    tos = t;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Log) { TINYEVM_SYNCED(op_log(e->aux)); }
  TINYEVM_NEXT;

  // --- lifecycle ---
  TINYEVM_OP(Create) { TINYEVM_SYNCED(op_create()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Call) { TINYEVM_SYNCED(op_call(CallKind::Call)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallCode) { TINYEVM_SYNCED(op_call(CallKind::CallCode)); }
  TINYEVM_NEXT;
  TINYEVM_OP(DelegateCall) { TINYEVM_SYNCED(op_call(CallKind::DelegateCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(StaticCall) { TINYEVM_SYNCED(op_call(CallKind::StaticCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Return) { TINYEVM_SYNCED(op_return(false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Revert) { TINYEVM_SYNCED(op_return(true)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Invalid) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SelfDestruct) {
    if (msg_.is_static) {
      fail(Status::StaticViolation);
      TINYEVM_NEXT;
    }
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address beneficiary = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    host_.self_destruct(msg_.self, beneficiary);
    done_ = true;
  }
  TINYEVM_NEXT;

#if !TINYEVM_COMPUTED_GOTO
    }  // switch
  }  // for
#endif

run_exit:
  pc_ = pc;
  gas_ = gas;
  cycles_ = cyc;
  ops_ = ops;
  sb[sp - 1] = tos;  // restore the flat-memory stack view
  stack_.set_state(sp, smax);

#undef TINYEVM_SYNCED
#undef TINYEVM_PUSH
#undef TINYEVM_PROLOGUE
#undef TINYEVM_OP
#undef TINYEVM_NEXT
}

#ifdef TINYEVM_LEGACY_DISPATCH
// ---------------------------------------------------------------------------
// Legacy two-level switch dispatcher. Kept for exactly one PR behind the
// TINYEVM_LEGACY_DISPATCH build flag as the differential-testing baseline
// for the token-threaded loop above; scheduled for removal once the
// threaded dispatcher has soaked.
// ---------------------------------------------------------------------------
void Frame::step() {
  const std::uint8_t op = msg_.code[pc_];
  const OpInfo& inf = info(op);

  const bool profile_tiny = config_.profile == VmProfile::TinyEvm;
  switch (classify(op, profile_tiny, config_.iot_opcodes,
                   config_.block_opcodes)) {
    case OpValidity::Undefined:
      fail(Status::InvalidOpcode);
      return;
    case OpValidity::Forbidden:
      fail(Status::ForbiddenOpcode);
      return;
    case OpValidity::Ok:
      break;
  }

  if (!charge(inf.base_gas)) {
    fail(Status::OutOfGas);
    return;
  }
  cycles_ += inf.mcu_cycles;
  ++ops_;
  if (config_.max_ops != 0 && ops_ > config_.max_ops) {
    fail(Status::WatchdogExpired);
    return;
  }
  ++pc_;  // opcodes below adjust pc_ for jumps/push immediates

  const auto opcode = static_cast<Opcode>(op);

  // PUSH/DUP/SWAP/LOG families first (range dispatch).
  if (is_push(op)) {
    const unsigned n = push_size(op);
    std::array<std::uint8_t, 32> imm{};
    for (unsigned i = 0; i < n; ++i) {
      const std::uint64_t idx = pc_ + i;
      imm[32 - n + i] = idx < msg_.code.size() ? msg_.code[idx] : 0;
    }
    pc_ += n;
    push(U256::from_word(imm));
    return;
  }
  if (is_dup(op)) {
    if (!stack_.dup(op - 0x7f)) {
      fail(stack_.size() >= config_.stack_limit ? Status::StackOverflow
                                                : Status::StackUnderflow);
    }
    return;
  }
  if (is_swap(op)) {
    if (!stack_.swap(op - 0x8f)) fail(Status::StackUnderflow);
    return;
  }
  if (is_log(op)) {
    op_log(op - 0xa0);
    return;
  }

  switch (opcode) {
    case Opcode::STOP:
      done_ = true;
      return;

    // --- binary arithmetic / comparison / bitwise ---
    case Opcode::ADD:
    case Opcode::MUL:
    case Opcode::SUB:
    case Opcode::DIV:
    case Opcode::SDIV:
    case Opcode::MOD:
    case Opcode::SMOD:
    case Opcode::LT:
    case Opcode::GT:
    case Opcode::SLT:
    case Opcode::SGT:
    case Opcode::EQ:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::BYTE:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::SIGNEXTEND: {
      const auto a = pop();
      const auto b = pop();
      if (!a || !b) return;
      U256 r;
      switch (opcode) {
        case Opcode::ADD: r = *a + *b; break;
        case Opcode::MUL: r = *a * *b; break;
        case Opcode::SUB: r = *a - *b; break;
        case Opcode::DIV: r = *a / *b; break;
        case Opcode::SDIV: r = U256::sdiv(*a, *b); break;
        case Opcode::MOD: r = *a % *b; break;
        case Opcode::SMOD: r = U256::smod(*a, *b); break;
        case Opcode::LT: r = U256{*a < *b ? 1ULL : 0ULL}; break;
        case Opcode::GT: r = U256{*a > *b ? 1ULL : 0ULL}; break;
        case Opcode::SLT: r = U256{U256::slt(*a, *b) ? 1ULL : 0ULL}; break;
        case Opcode::SGT: r = U256{U256::sgt(*a, *b) ? 1ULL : 0ULL}; break;
        case Opcode::EQ: r = U256{*a == *b ? 1ULL : 0ULL}; break;
        case Opcode::AND: r = *a & *b; break;
        case Opcode::OR: r = *a | *b; break;
        case Opcode::XOR: r = *a ^ *b; break;
        case Opcode::BYTE: r = U256::byte(*a, *b); break;
        case Opcode::SHL:
          r = a->fits_u64() && a->as_u64() < 256
                  ? (*b << static_cast<unsigned>(a->as_u64()))
                  : U256{};
          break;
        case Opcode::SHR:
          r = a->fits_u64() && a->as_u64() < 256
                  ? (*b >> static_cast<unsigned>(a->as_u64()))
                  : U256{};
          break;
        case Opcode::SAR: r = U256::sar(*a, *b); break;
        case Opcode::SIGNEXTEND: r = U256::signextend(*a, *b); break;
        default: return;  // unreachable
      }
      push(r);
      return;
    }

    case Opcode::ADDMOD:
    case Opcode::MULMOD: {
      const auto a = pop();
      const auto b = pop();
      const auto m = pop();
      if (!a || !b || !m) return;
      push(opcode == Opcode::ADDMOD ? U256::addmod(*a, *b, *m)
                                    : U256::mulmod(*a, *b, *m));
      return;
    }

    case Opcode::EXP:
      op_exp();
      return;

    case Opcode::ISZERO:
    case Opcode::NOT: {
      const auto a = pop();
      if (!a) return;
      push(opcode == Opcode::ISZERO ? U256{a->is_zero() ? 1ULL : 0ULL} : ~*a);
      return;
    }

    case Opcode::SENSOR:
      op_sensor();
      return;

    case Opcode::SHA3:
      op_sha3();
      return;

    // --- environment ---
    case Opcode::ADDRESS:
      push(U256::from_bytes(msg_.self));
      return;
    case Opcode::ORIGIN:
      push(U256::from_bytes(msg_.origin));
      return;
    case Opcode::CALLER:
      push(U256::from_bytes(msg_.caller));
      return;
    case Opcode::CALLVALUE:
      push(msg_.value);
      return;
    case Opcode::BALANCE: {
      const auto a = pop();
      if (!a) return;
      push(host_.balance(to_address(*a)));
      return;
    }
    case Opcode::CALLDATALOAD: {
      const auto off = pop();
      if (!off) return;
      std::array<std::uint8_t, 32> buf{};
      // Bound i by the bytes remaining past o: `o + i` would wrap for
      // offsets near 2^64 and alias the start of calldata.
      if (off->fits_u64() && off->as_u64() < msg_.data.size()) {
        const std::uint64_t o = off->as_u64();
        const std::uint64_t avail = msg_.data.size() - o;
        for (unsigned i = 0; i < 32 && i < avail; ++i) {
          buf[i] = msg_.data[o + i];
        }
      }
      push(U256::from_word(buf));
      return;
    }
    case Opcode::CALLDATASIZE:
      push(U256{msg_.data.size()});
      return;
    case Opcode::CODESIZE:
      push(U256{msg_.code.size()});
      return;
    case Opcode::RETURNDATASIZE:
      push(U256{return_data_.size()});
      return;
    case Opcode::CALLDATACOPY:
      op_copy(msg_.data, false);
      return;
    case Opcode::CODECOPY:
      op_copy(msg_.code, false);
      return;
    case Opcode::RETURNDATACOPY:
      op_copy(return_data_, false);
      return;
    case Opcode::GASPRICE:
      push(U256{1});  // flat price in the simulated chain
      return;
    case Opcode::EXTCODESIZE: {
      const auto a = pop();
      if (!a) return;
      push(U256{host_.code_at(to_address(*a)).size()});
      return;
    }
    case Opcode::EXTCODECOPY: {
      const auto a = pop();
      if (!a) return;
      op_copy(host_.code_at(to_address(*a)), true);
      return;
    }

    // --- block data ---
    case Opcode::BLOCKHASH: {
      const auto n = pop();
      if (!n) return;
      push(n->fits_u64()
               ? U256::from_bytes(host_.block_hash(n->as_u64()))
               : U256{});
      return;
    }
    case Opcode::COINBASE:
      push(U256::from_bytes(host_.block_info().coinbase));
      return;
    case Opcode::TIMESTAMP:
      push(U256{host_.block_info().timestamp});
      return;
    case Opcode::NUMBER:
      push(U256{host_.block_info().number});
      return;
    case Opcode::DIFFICULTY:
      push(host_.block_info().difficulty);
      return;
    case Opcode::GASLIMIT:
      push(U256{host_.block_info().gas_limit});
      return;

    // --- stack / memory / storage / control flow ---
    case Opcode::POP:
      pop();
      return;
    case Opcode::MLOAD: {
      const auto off = pop();
      if (!off) return;
      if (!off->fits_u64()) {
        fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
        return;
      }
      if (!grow(off->as_u64(), 32)) return;
      push(memory_.load_word(off->as_u64()));
      return;
    }
    case Opcode::MSTORE: {
      const auto off = pop();
      const auto val = pop();
      if (!off || !val) return;
      if (!off->fits_u64()) {
        fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
        return;
      }
      if (!grow(off->as_u64(), 32)) return;
      memory_.store_word(off->as_u64(), *val);
      return;
    }
    case Opcode::MSTORE8: {
      const auto off = pop();
      const auto val = pop();
      if (!off || !val) return;
      if (!off->fits_u64()) {
        fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
        return;
      }
      if (!grow(off->as_u64(), 1)) return;
      memory_.store_byte(off->as_u64(),
                         static_cast<std::uint8_t>(val->limb(0) & 0xFF));
      return;
    }
    case Opcode::SLOAD: {
      const auto key = pop();
      if (!key) return;
      push(host_.sload(msg_.self, *key));
      return;
    }
    case Opcode::SSTORE:
      op_sstore();
      return;
    case Opcode::JUMP: {
      const auto dest = pop();
      if (!dest) return;
      if (!dest->fits_u64() || !analysis_.valid_jumpdest(dest->as_u64())) {
        fail(Status::InvalidJump);
        return;
      }
      pc_ = dest->as_u64();
      return;
    }
    case Opcode::JUMPI: {
      const auto dest = pop();
      const auto cond = pop();
      if (!dest || !cond) return;
      if (cond->is_zero()) return;
      if (!dest->fits_u64() || !analysis_.valid_jumpdest(dest->as_u64())) {
        fail(Status::InvalidJump);
        return;
      }
      pc_ = dest->as_u64();
      return;
    }
    case Opcode::PC:
      push(U256{pc_ - 1});
      return;
    case Opcode::MSIZE:
      push(U256{memory_.size()});
      return;
    case Opcode::GAS:
      push(U256{static_cast<std::uint64_t>(gas_ > 0 ? gas_ : 0)});
      return;
    case Opcode::JUMPDEST:
      return;

    // --- lifecycle ---
    case Opcode::CREATE:
      op_create();
      return;
    case Opcode::CALL:
    case Opcode::CALLCODE:
      op_call(opcode == Opcode::CALL ? CallKind::Call : CallKind::CallCode);
      return;
    case Opcode::DELEGATECALL:
      op_call(CallKind::DelegateCall);
      return;
    case Opcode::STATICCALL:
      op_call(CallKind::StaticCall);
      return;
    case Opcode::RETURN:
      op_return(false);
      return;
    case Opcode::REVERT:
      op_return(true);
      return;
    case Opcode::INVALID:
      fail(Status::InvalidOpcode);
      return;
    case Opcode::SELFDESTRUCT: {
      if (msg_.is_static) {
        fail(Status::StaticViolation);
        return;
      }
      const auto a = pop();
      if (!a) return;
      host_.self_destruct(msg_.self, to_address(*a));
      done_ = true;
      return;
    }

    default:
      fail(Status::InvalidOpcode);
      return;
  }
}
#endif  // TINYEVM_LEGACY_DISPATCH

void Frame::op_exp() {
  const auto base = pop();
  const auto e = pop();
  if (!base || !e) return;
  const unsigned exp_bytes = e->byte_length();
  if (!charge(static_cast<std::int64_t>(50) * exp_bytes)) {
    fail(Status::OutOfGas);
    return;
  }
  cycles_ += 900ULL * exp_bytes;  // square-and-multiply per exponent byte
  push(U256::exp(*base, *e));
}

void Frame::op_sensor() {
  if (config_.profile != VmProfile::TinyEvm || !config_.iot_opcodes) {
    fail(Status::InvalidOpcode);
    return;
  }
  if (msg_.is_static) {
    // Reads are pure but actuation mutates the world; the selector decides,
    // so conservatively forbid both under STATICCALL.
    fail(Status::StaticViolation);
    return;
  }
  const auto selector = pop();
  const auto param = pop();
  if (!selector || !param) return;
  SensorRequest req;
  req.actuate = selector->bit(0);
  req.device_id = static_cast<std::uint32_t>((selector->limb(0) >> 1) &
                                             0x7FFFFFFFULL);
  req.parameter = *param;
  const auto reading = host_.sensor_access(req);
  if (!reading) {
    fail(Status::SensorFailure);
    return;
  }
  push(*reading);
}

void Frame::op_sha3() {
  const auto range = pop_range();
  if (!range) return;
  const std::uint64_t words = (range->len + 31) / 32;
  if (!charge(static_cast<std::int64_t>(6 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  cycles_ += 3200ULL * words;  // software keccak absorb cost per word
  const Bytes data = memory_.read(range->offset, range->len);
  push(U256::from_bytes(keccak256(data)));
}

void Frame::op_copy(std::span<const std::uint8_t> src, bool /*external*/) {
  const auto dst = pop();
  const auto src_off = pop();
  const auto len = pop();
  if (!dst || !src_off || !len) return;
  if (len->is_zero()) return;
  if (!dst->fits_u64() || !len->fits_u64()) {
    fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
    return;
  }
  const std::uint64_t n = len->as_u64();
  const std::uint64_t words = (n + 31) / 32;
  if (!charge(static_cast<std::int64_t>(3 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(dst->as_u64(), n)) return;
  cycles_ += 6ULL * n;  // ~6 cycles/byte memcpy on the M3
  memory_.store_bytes(dst->as_u64(), src,
                      src_off->fits_u64() ? src_off->as_u64() : src.size(),
                      n);
}

void Frame::op_log(unsigned topic_count) {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto range = pop_range();
  if (!range) return;
  LogEntry entry;
  entry.address = msg_.self;
  for (unsigned i = 0; i < topic_count; ++i) {
    const auto t = pop();
    if (!t) return;
    entry.topics.push_back(*t);
  }
  if (!charge(static_cast<std::int64_t>(8 * range->len))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  entry.data = memory_.read(range->offset, range->len);
  host_.emit_log(std::move(entry));
}

void Frame::op_sstore() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto key = pop();
  const auto value = pop();
  if (!key || !value) return;
  if (!host_.sstore(msg_.self, *key, *value)) {
    fail(Status::StorageExhausted);
    return;
  }
}

void Frame::op_create() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto value = pop();
  if (!value) return;
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;

  CreateRequest req;
  req.sender = msg_.self;
  req.value = *value;
  req.init_code = memory_.read(range->offset, range->len);
  req.gas = gas_;
  req.depth = msg_.depth + 1;
  const CreateResult res = host_.create(req);
  if (config_.metering) gas_ = res.gas_left;
  push(res.success ? U256::from_bytes(res.address) : U256{});
}

void Frame::op_call(CallKind kind) {
  const auto gas_arg = pop();
  const auto to_arg = pop();
  if (!gas_arg || !to_arg) return;

  U256 value;
  if (kind == CallKind::Call || kind == CallKind::CallCode) {
    const auto v = pop();
    if (!v) return;
    value = *v;
  }
  if (kind == CallKind::Call && msg_.is_static && !value.is_zero()) {
    fail(Status::StaticViolation);
    return;
  }

  const auto in = pop_range();
  if (!in) return;
  const auto out = pop_range();
  if (!out) return;
  if (!grow(in->offset, in->len)) return;
  if (!grow(out->offset, out->len)) return;

  CallRequest req;
  req.kind = kind;
  req.to = to_address(*to_arg);
  req.sender = kind == CallKind::DelegateCall ? msg_.caller : msg_.self;
  req.value = kind == CallKind::DelegateCall ? msg_.value : value;
  req.data = memory_.read(in->offset, in->len);
  req.depth = msg_.depth + 1;
  req.is_static = msg_.is_static || kind == CallKind::StaticCall;
  // 63/64 rule when metering; otherwise pass the requested gas through.
  const std::int64_t available = config_.metering ? gas_ - gas_ / 64 : gas_;
  req.gas = gas_arg->fits_u64() && static_cast<std::int64_t>(
                                       gas_arg->as_u64()) < available
                ? static_cast<std::int64_t>(gas_arg->as_u64())
                : available;

  const CallResult res = host_.call(req);
  return_data_ = res.output;
  if (config_.metering) {
    gas_ -= req.gas - res.gas_left;
    if (gas_ < 0) {
      fail(Status::OutOfGas);
      return;
    }
  }
  const std::uint64_t n = std::min<std::uint64_t>(out->len, res.output.size());
  if (n > 0) memory_.store_bytes(out->offset, res.output, 0, n);
  push(U256{res.success ? 1ULL : 0ULL});
}

void Frame::op_return(bool revert) {
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;
  output_ = memory_.read(range->offset, range->len);
  status_ = revert ? Status::Revert : Status::Success;
  done_ = true;
}

}  // namespace

Vm::Vm(VmConfig config)
    : config_(config),
      dispatch_(std::make_shared<const DispatchTable>(
          build_dispatch_table(config))) {}

ExecResult Vm::execute(Host& host, const Message& msg) const {
  Frame frame(config_, *dispatch_, host, msg);
  return frame.run();
}

}  // namespace tinyevm::evm
