#include "evm/vm.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "evm/code_cache.hpp"
#include "evm/decoded.hpp"
#include "evm/engine.hpp"
#include "evm/frame.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinyevm::evm {

namespace {

/// Resolves the configured engine name, mapping the legacy
/// predecode/elide_checks flag pair when no name is given: raw when
/// predecode is off, checked dispatch when elision is off, the span fast
/// path otherwise. An explicit VmConfig::engine always wins.
std::string_view engine_for(const VmConfig& config) {
  if (!config.engine.empty()) return config.engine;
  if (!config.predecode) return kRawEngine;
  if (!config.elide_checks) return kPredecodedEngine;
  return kElidedEngine;
}

/// Registry instruments for one engine, interned once per engine name so
/// the execute hot path never takes the registry mutex. The per-status
/// counters are pre-created (all 15 Status values), keeping scrape output
/// deterministic for a given engine set.
struct EngineInstruments {
  static constexpr std::size_t kStatuses =
      static_cast<std::size_t>(Status::WatchdogExpired) + 1;
  std::array<obs::Counter*, kStatuses> executions{};
  obs::Counter* ops = nullptr;
  obs::Counter* gas = nullptr;
  obs::Histogram* latency = nullptr;

  explicit EngineInstruments(const std::string& engine) {
    auto& registry = obs::Registry::instance();
    for (std::size_t s = 0; s < kStatuses; ++s) {
      executions[s] = &registry.counter(
          "tinyevm_vm_executions_total",
          "Vm::execute calls by execution engine and final status",
          {{"engine", engine},
           {"status", std::string(to_string(static_cast<Status>(s)))}});
    }
    ops = &registry.counter("tinyevm_vm_ops_total",
                            "EVM instructions retired, per engine",
                            {{"engine", engine}});
    gas = &registry.counter(
        "tinyevm_vm_gas_used_total",
        "Gas consumed (metering profiles only), per engine",
        {{"engine", engine}});
    latency = &registry.histogram("tinyevm_vm_execute_us",
                                  "Vm::execute wall time in microseconds",
                                  {{"engine", engine}});
  }
};

EngineInstruments& instruments_for(std::string_view engine) {
  static std::mutex mu;
  static std::unordered_map<std::string,
                            std::unique_ptr<EngineInstruments>>* table =
      new std::unordered_map<std::string, std::unique_ptr<EngineInstruments>>();
  std::lock_guard lock(mu);
  auto it = table->find(std::string(engine));
  if (it == table->end()) {
    it = table
             ->emplace(std::string(engine),
                       std::make_unique<EngineInstruments>(std::string(engine)))
             .first;
  }
  return *it->second;
}

}  // namespace

Vm::Vm(VmConfig config, std::shared_ptr<CodeCache> cache)
    : config_(std::move(config)),
      profile_(EngineProfile::from_config(config_)),
      engine_(&EngineRegistry::instance().require(engine_for(config_))),
      dispatch_(std::make_shared<const DispatchTable>(
          build_dispatch_table(profile_))),
      cache_(cache ? std::move(cache) : CodeCache::shared_default()) {}

ExecResult Vm::execute(Host& host, const Message& msg) const {
  const ExecutionEngine* engine = engine_;
  if (!msg.engine.empty() && msg.engine != engine->name()) {
    engine = &EngineRegistry::instance().require(msg.engine);
  }

  // A translation-consuming engine executes the cached pre-decoded
  // stream. A null program (empty code, or code past the cache's size
  // cap) falls back to the raw threaded loop inside the engine, which
  // decodes per run.
  std::shared_ptr<const DecodedProgram> program;
  if (engine->uses_translation()) {
    program = cache_->get_or_translate(
        msg.code, profile_.translation(),
        msg.code_hash ? &*msg.code_hash : nullptr);
  }

  const HostInterface host_interface = HostInterface::wrap(host);
  EngineMessage engine_msg;
  engine_msg.self = msg.self;
  engine_msg.caller = msg.caller;
  engine_msg.origin = msg.origin;
  engine_msg.value = msg.value;
  engine_msg.data = msg.data;
  engine_msg.code = msg.code;
  engine_msg.code_hash = msg.code_hash ? &*msg.code_hash : nullptr;
  engine_msg.gas = msg.gas;
  engine_msg.depth = msg.depth;
  engine_msg.is_static = msg.is_static;
  engine_msg.jump_trace = msg.jump_trace;

  EngineContext ctx;
  ctx.profile = &profile_;
  ctx.dispatch = dispatch_.get();
  ctx.program = program.get();

  if (!obs::metrics_enabled() && !obs::trace_enabled()) {
    return engine->execute(host_interface, ctx, engine_msg);
  }

  obs::Span span("vm.execute", "vm");
  const auto start = std::chrono::steady_clock::now();
  ExecResult result = engine->execute(host_interface, ctx, engine_msg);
  if (obs::metrics_enabled()) {
    const auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EngineInstruments& inst = instruments_for(engine->name());
    const auto status = static_cast<std::size_t>(result.status);
    if (status < EngineInstruments::kStatuses) inst.executions[status]->inc();
    inst.ops->inc(result.stats.ops_executed);
    if (msg.gas > result.gas_left) {
      inst.gas->inc(static_cast<std::uint64_t>(msg.gas - result.gas_left));
    }
    inst.latency->record(static_cast<std::uint64_t>(elapsed_us));
  }
  span.set_arg(result.stats.ops_executed);
  return result;
}

}  // namespace tinyevm::evm
