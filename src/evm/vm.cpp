#include "evm/vm.hpp"

#include <utility>

#include "evm/code_cache.hpp"
#include "evm/decoded.hpp"
#include "evm/engine.hpp"
#include "evm/frame.hpp"

namespace tinyevm::evm {

namespace {

/// Resolves the configured engine name, mapping the legacy
/// predecode/elide_checks flag pair when no name is given: raw when
/// predecode is off, checked dispatch when elision is off, the span fast
/// path otherwise. An explicit VmConfig::engine always wins.
std::string_view engine_for(const VmConfig& config) {
  if (!config.engine.empty()) return config.engine;
  if (!config.predecode) return kRawEngine;
  if (!config.elide_checks) return kPredecodedEngine;
  return kElidedEngine;
}

}  // namespace

Vm::Vm(VmConfig config, std::shared_ptr<CodeCache> cache)
    : config_(std::move(config)),
      profile_(EngineProfile::from_config(config_)),
      engine_(&EngineRegistry::instance().require(engine_for(config_))),
      dispatch_(std::make_shared<const DispatchTable>(
          build_dispatch_table(profile_))),
      cache_(cache ? std::move(cache) : CodeCache::shared_default()) {}

ExecResult Vm::execute(Host& host, const Message& msg) const {
  const ExecutionEngine* engine = engine_;
  if (!msg.engine.empty() && msg.engine != engine->name()) {
    engine = &EngineRegistry::instance().require(msg.engine);
  }

  // A translation-consuming engine executes the cached pre-decoded
  // stream. A null program (empty code, or code past the cache's size
  // cap) falls back to the raw threaded loop inside the engine, which
  // decodes per run.
  std::shared_ptr<const DecodedProgram> program;
  if (engine->uses_translation()) {
    program = cache_->get_or_translate(
        msg.code, profile_.translation(),
        msg.code_hash ? &*msg.code_hash : nullptr);
  }

  const HostInterface host_interface = HostInterface::wrap(host);
  EngineMessage engine_msg;
  engine_msg.self = msg.self;
  engine_msg.caller = msg.caller;
  engine_msg.origin = msg.origin;
  engine_msg.value = msg.value;
  engine_msg.data = msg.data;
  engine_msg.code = msg.code;
  engine_msg.code_hash = msg.code_hash ? &*msg.code_hash : nullptr;
  engine_msg.gas = msg.gas;
  engine_msg.depth = msg.depth;
  engine_msg.is_static = msg.is_static;

  EngineContext ctx;
  ctx.profile = &profile_;
  ctx.dispatch = dispatch_.get();
  ctx.program = program.get();
  return engine->execute(host_interface, ctx, engine_msg);
}

}  // namespace tinyevm::evm
