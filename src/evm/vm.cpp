#include "evm/vm.hpp"

#include <cstring>

#include "crypto/hash.hpp"

namespace tinyevm::evm {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Success: return "success";
    case Status::Revert: return "revert";
    case Status::OutOfGas: return "out of gas";
    case Status::StackOverflow: return "stack overflow";
    case Status::StackUnderflow: return "stack underflow";
    case Status::OutOfMemory: return "out of memory";
    case Status::StorageExhausted: return "storage exhausted";
    case Status::InvalidJump: return "invalid jump";
    case Status::InvalidOpcode: return "invalid opcode";
    case Status::ForbiddenOpcode: return "forbidden opcode";
    case Status::SensorFailure: return "sensor failure";
    case Status::CallDepthExceeded: return "call depth exceeded";
    case Status::StaticViolation: return "static violation";
    case Status::WatchdogExpired: return "watchdog expired";
  }
  return "unknown";
}

CodeAnalysis::CodeAnalysis(std::span<const std::uint8_t> code)
    : jumpdest_(code.size(), false) {
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const std::uint8_t op = code[pc];
    if (op == static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      jumpdest_[pc] = true;
    } else if (is_push(op)) {
      pc += push_size(op);  // immediates are data, never jump targets
    }
  }
}

namespace {

/// Interpreter frame; created per message and torn down when the run ends.
class Frame {
 public:
  Frame(const VmConfig& config, Host& host, const Message& msg)
      : config_(config),
        host_(host),
        msg_(msg),
        analysis_(msg.code),
        stack_(config.stack_limit),
        memory_(config.memory_limit),
        gas_(msg.gas) {}

  ExecResult run();

 private:
  // -- helpers --------------------------------------------------------
  [[nodiscard]] bool charge(std::int64_t amount) {
    if (!config_.metering) return true;
    gas_ -= amount;
    return gas_ >= 0;
  }

  /// Quadratic memory-expansion gas (Ethereum profile); hard cap check
  /// (TinyEVM profile) happens inside Memory::expand.
  [[nodiscard]] bool charge_memory(std::uint64_t offset, std::uint64_t len) {
    if (len == 0) return true;
    if (!config_.metering) return true;
    const std::uint64_t end = offset + len;
    if (end < offset) return false;
    const std::uint64_t new_words = (end + 31) / 32;
    const std::uint64_t old_words = (memory_.size() + 31) / 32;
    if (new_words <= old_words) return true;
    auto cost = [](std::uint64_t w) {
      return static_cast<std::int64_t>(3 * w + w * w / 512);
    };
    return charge(cost(new_words) - cost(old_words));
  }

  /// Pops a memory (offset, length) pair, validating both fit in 64 bits.
  struct MemRange {
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::optional<MemRange> pop_range() {
    const auto off = stack_.pop();
    const auto len = stack_.pop();
    if (!off || !len) {
      fail(Status::StackUnderflow);
      return std::nullopt;
    }
    if (!len->is_zero() && (!off->fits_u64() || !len->fits_u64())) {
      fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
      return std::nullopt;
    }
    return MemRange{off->fits_u64() ? off->as_u64() : 0, len->as_u64()};
  }

  /// Prepares a memory range: expansion gas + hard-cap growth.
  bool grow(std::uint64_t offset, std::uint64_t len) {
    if (!charge_memory(offset, len)) {
      fail(Status::OutOfGas);
      return false;
    }
    if (!memory_.expand(offset, len)) {
      fail(Status::OutOfMemory);
      return false;
    }
    return true;
  }

  void fail(Status status) {
    status_ = status;
    done_ = true;
  }

  bool push(const U256& v) {
    if (!stack_.push(v)) {
      fail(Status::StackOverflow);
      return false;
    }
    return true;
  }

  std::optional<U256> pop() {
    auto v = stack_.pop();
    if (!v) fail(Status::StackUnderflow);
    return v;
  }

  void step();
  void op_sensor();
  void op_sha3();
  void op_copy(std::span<const std::uint8_t> src, bool external_code);
  void op_log(unsigned topic_count);
  void op_create();
  void op_call(CallKind kind);
  void op_return(bool revert);
  void op_sstore();
  void op_exp();

  // -- state ----------------------------------------------------------
  const VmConfig& config_;
  Host& host_;
  const Message& msg_;
  CodeAnalysis analysis_;
  Stack stack_;
  Memory memory_;
  Bytes return_data_;  // last nested-call output (RETURNDATA*)
  Bytes output_;
  std::uint64_t pc_ = 0;
  std::int64_t gas_;
  std::uint64_t cycles_ = 0;
  std::uint64_t ops_ = 0;
  Status status_ = Status::Success;
  bool done_ = false;
};

ExecResult Frame::run() {
  if (msg_.depth > config_.max_call_depth) {
    return ExecResult{Status::CallDepthExceeded, {}, gas_, {}};
  }
  while (!done_) {
    if (pc_ >= msg_.code.size()) break;  // implicit STOP
    step();
  }
  ExecResult result;
  result.status = status_;
  result.output = std::move(output_);
  result.gas_left = status_ == Status::Success || status_ == Status::Revert
                        ? gas_
                        : 0;
  result.stats.max_stack_pointer = stack_.max_pointer();
  result.stats.peak_memory = memory_.peak();
  result.stats.ops_executed = ops_;
  result.stats.mcu_cycles = cycles_;
  return result;
}

void Frame::step() {
  const std::uint8_t op = msg_.code[pc_];
  const OpInfo& inf = info(op);

  const bool profile_tiny = config_.profile == VmProfile::TinyEvm;
  if (!inf.defined && !(profile_tiny && op == 0x0c && config_.iot_opcodes)) {
    fail(Status::InvalidOpcode);
    return;
  }
  if (profile_tiny && !inf.tinyevm) {
    fail(Status::ForbiddenOpcode);
    return;
  }
  if (!profile_tiny) {
    if (op == 0x0c) {
      fail(Status::InvalidOpcode);  // SENSOR unknown to the original EVM
      return;
    }
    if (inf.category == OpCategory::Blockchain && !config_.block_opcodes) {
      fail(Status::ForbiddenOpcode);
      return;
    }
  }

  if (!charge(inf.base_gas)) {
    fail(Status::OutOfGas);
    return;
  }
  cycles_ += inf.mcu_cycles;
  ++ops_;
  if (config_.max_ops != 0 && ops_ > config_.max_ops) {
    fail(Status::WatchdogExpired);
    return;
  }
  ++pc_;  // opcodes below adjust pc_ for jumps/push immediates

  const auto opcode = static_cast<Opcode>(op);

  // PUSH/DUP/SWAP/LOG families first (range dispatch).
  if (is_push(op)) {
    const unsigned n = push_size(op);
    std::array<std::uint8_t, 32> imm{};
    for (unsigned i = 0; i < n; ++i) {
      const std::uint64_t idx = pc_ + i;
      imm[32 - n + i] = idx < msg_.code.size() ? msg_.code[idx] : 0;
    }
    pc_ += n;
    push(U256::from_word(imm));
    return;
  }
  if (is_dup(op)) {
    if (!stack_.dup(op - 0x7f)) {
      fail(stack_.size() >= config_.stack_limit ? Status::StackOverflow
                                                : Status::StackUnderflow);
    }
    return;
  }
  if (is_swap(op)) {
    if (!stack_.swap(op - 0x8f)) fail(Status::StackUnderflow);
    return;
  }
  if (is_log(op)) {
    op_log(op - 0xa0);
    return;
  }

  switch (opcode) {
    case Opcode::STOP:
      done_ = true;
      return;

    // --- binary arithmetic / comparison / bitwise ---
    case Opcode::ADD:
    case Opcode::MUL:
    case Opcode::SUB:
    case Opcode::DIV:
    case Opcode::SDIV:
    case Opcode::MOD:
    case Opcode::SMOD:
    case Opcode::LT:
    case Opcode::GT:
    case Opcode::SLT:
    case Opcode::SGT:
    case Opcode::EQ:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::BYTE:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::SIGNEXTEND: {
      const auto a = pop();
      const auto b = pop();
      if (!a || !b) return;
      U256 r;
      switch (opcode) {
        case Opcode::ADD: r = *a + *b; break;
        case Opcode::MUL: r = *a * *b; break;
        case Opcode::SUB: r = *a - *b; break;
        case Opcode::DIV: r = *a / *b; break;
        case Opcode::SDIV: r = U256::sdiv(*a, *b); break;
        case Opcode::MOD: r = *a % *b; break;
        case Opcode::SMOD: r = U256::smod(*a, *b); break;
        case Opcode::LT: r = U256{*a < *b ? 1ULL : 0ULL}; break;
        case Opcode::GT: r = U256{*a > *b ? 1ULL : 0ULL}; break;
        case Opcode::SLT: r = U256{U256::slt(*a, *b) ? 1ULL : 0ULL}; break;
        case Opcode::SGT: r = U256{U256::sgt(*a, *b) ? 1ULL : 0ULL}; break;
        case Opcode::EQ: r = U256{*a == *b ? 1ULL : 0ULL}; break;
        case Opcode::AND: r = *a & *b; break;
        case Opcode::OR: r = *a | *b; break;
        case Opcode::XOR: r = *a ^ *b; break;
        case Opcode::BYTE: r = U256::byte(*a, *b); break;
        case Opcode::SHL:
          r = a->fits_u64() && a->as_u64() < 256
                  ? (*b << static_cast<unsigned>(a->as_u64()))
                  : U256{};
          break;
        case Opcode::SHR:
          r = a->fits_u64() && a->as_u64() < 256
                  ? (*b >> static_cast<unsigned>(a->as_u64()))
                  : U256{};
          break;
        case Opcode::SAR: r = U256::sar(*a, *b); break;
        case Opcode::SIGNEXTEND: r = U256::signextend(*a, *b); break;
        default: return;  // unreachable
      }
      push(r);
      return;
    }

    case Opcode::ADDMOD:
    case Opcode::MULMOD: {
      const auto a = pop();
      const auto b = pop();
      const auto m = pop();
      if (!a || !b || !m) return;
      push(opcode == Opcode::ADDMOD ? U256::addmod(*a, *b, *m)
                                    : U256::mulmod(*a, *b, *m));
      return;
    }

    case Opcode::EXP:
      op_exp();
      return;

    case Opcode::ISZERO:
    case Opcode::NOT: {
      const auto a = pop();
      if (!a) return;
      push(opcode == Opcode::ISZERO ? U256{a->is_zero() ? 1ULL : 0ULL} : ~*a);
      return;
    }

    case Opcode::SENSOR:
      op_sensor();
      return;

    case Opcode::SHA3:
      op_sha3();
      return;

    // --- environment ---
    case Opcode::ADDRESS:
      push(U256::from_bytes(msg_.self));
      return;
    case Opcode::ORIGIN:
      push(U256::from_bytes(msg_.origin));
      return;
    case Opcode::CALLER:
      push(U256::from_bytes(msg_.caller));
      return;
    case Opcode::CALLVALUE:
      push(msg_.value);
      return;
    case Opcode::BALANCE: {
      const auto a = pop();
      if (!a) return;
      Address addr{};
      const auto w = a->to_word();
      std::memcpy(addr.data(), w.data() + 12, 20);
      push(host_.balance(addr));
      return;
    }
    case Opcode::CALLDATALOAD: {
      const auto off = pop();
      if (!off) return;
      std::array<std::uint8_t, 32> buf{};
      if (off->fits_u64()) {
        const std::uint64_t o = off->as_u64();
        for (unsigned i = 0; i < 32; ++i) {
          if (o + i < msg_.data.size()) buf[i] = msg_.data[o + i];
        }
      }
      push(U256::from_word(buf));
      return;
    }
    case Opcode::CALLDATASIZE:
      push(U256{msg_.data.size()});
      return;
    case Opcode::CODESIZE:
      push(U256{msg_.code.size()});
      return;
    case Opcode::RETURNDATASIZE:
      push(U256{return_data_.size()});
      return;
    case Opcode::CALLDATACOPY:
      op_copy(msg_.data, false);
      return;
    case Opcode::CODECOPY:
      op_copy(msg_.code, false);
      return;
    case Opcode::RETURNDATACOPY:
      op_copy(return_data_, false);
      return;
    case Opcode::GASPRICE:
      push(U256{1});  // flat price in the simulated chain
      return;
    case Opcode::EXTCODESIZE: {
      const auto a = pop();
      if (!a) return;
      Address addr{};
      const auto w = a->to_word();
      std::memcpy(addr.data(), w.data() + 12, 20);
      push(U256{host_.code_at(addr).size()});
      return;
    }
    case Opcode::EXTCODECOPY: {
      const auto a = pop();
      if (!a) return;
      Address addr{};
      const auto w = a->to_word();
      std::memcpy(addr.data(), w.data() + 12, 20);
      op_copy(host_.code_at(addr), true);
      return;
    }

    // --- block data ---
    case Opcode::BLOCKHASH: {
      const auto n = pop();
      if (!n) return;
      push(n->fits_u64()
               ? U256::from_bytes(host_.block_hash(n->as_u64()))
               : U256{});
      return;
    }
    case Opcode::COINBASE:
      push(U256::from_bytes(host_.block_info().coinbase));
      return;
    case Opcode::TIMESTAMP:
      push(U256{host_.block_info().timestamp});
      return;
    case Opcode::NUMBER:
      push(U256{host_.block_info().number});
      return;
    case Opcode::DIFFICULTY:
      push(host_.block_info().difficulty);
      return;
    case Opcode::GASLIMIT:
      push(U256{host_.block_info().gas_limit});
      return;

    // --- stack / memory / storage / control flow ---
    case Opcode::POP:
      pop();
      return;
    case Opcode::MLOAD: {
      const auto off = pop();
      if (!off) return;
      if (!off->fits_u64()) {
        fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
        return;
      }
      if (!grow(off->as_u64(), 32)) return;
      push(memory_.load_word(off->as_u64()));
      return;
    }
    case Opcode::MSTORE: {
      const auto off = pop();
      const auto val = pop();
      if (!off || !val) return;
      if (!off->fits_u64()) {
        fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
        return;
      }
      if (!grow(off->as_u64(), 32)) return;
      memory_.store_word(off->as_u64(), *val);
      return;
    }
    case Opcode::MSTORE8: {
      const auto off = pop();
      const auto val = pop();
      if (!off || !val) return;
      if (!off->fits_u64()) {
        fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
        return;
      }
      if (!grow(off->as_u64(), 1)) return;
      memory_.store_byte(off->as_u64(),
                         static_cast<std::uint8_t>(val->limb(0) & 0xFF));
      return;
    }
    case Opcode::SLOAD: {
      const auto key = pop();
      if (!key) return;
      push(host_.sload(msg_.self, *key));
      return;
    }
    case Opcode::SSTORE:
      op_sstore();
      return;
    case Opcode::JUMP: {
      const auto dest = pop();
      if (!dest) return;
      if (!dest->fits_u64() || !analysis_.valid_jumpdest(dest->as_u64())) {
        fail(Status::InvalidJump);
        return;
      }
      pc_ = dest->as_u64();
      return;
    }
    case Opcode::JUMPI: {
      const auto dest = pop();
      const auto cond = pop();
      if (!dest || !cond) return;
      if (cond->is_zero()) return;
      if (!dest->fits_u64() || !analysis_.valid_jumpdest(dest->as_u64())) {
        fail(Status::InvalidJump);
        return;
      }
      pc_ = dest->as_u64();
      return;
    }
    case Opcode::PC:
      push(U256{pc_ - 1});
      return;
    case Opcode::MSIZE:
      push(U256{memory_.size()});
      return;
    case Opcode::GAS:
      push(U256{static_cast<std::uint64_t>(gas_ > 0 ? gas_ : 0)});
      return;
    case Opcode::JUMPDEST:
      return;

    // --- lifecycle ---
    case Opcode::CREATE:
      op_create();
      return;
    case Opcode::CALL:
    case Opcode::CALLCODE:
      op_call(opcode == Opcode::CALL ? CallKind::Call : CallKind::CallCode);
      return;
    case Opcode::DELEGATECALL:
      op_call(CallKind::DelegateCall);
      return;
    case Opcode::STATICCALL:
      op_call(CallKind::StaticCall);
      return;
    case Opcode::RETURN:
      op_return(false);
      return;
    case Opcode::REVERT:
      op_return(true);
      return;
    case Opcode::INVALID:
      fail(Status::InvalidOpcode);
      return;
    case Opcode::SELFDESTRUCT: {
      if (msg_.is_static) {
        fail(Status::StaticViolation);
        return;
      }
      const auto a = pop();
      if (!a) return;
      Address beneficiary{};
      const auto w = a->to_word();
      std::memcpy(beneficiary.data(), w.data() + 12, 20);
      host_.self_destruct(msg_.self, beneficiary);
      done_ = true;
      return;
    }

    default:
      fail(Status::InvalidOpcode);
      return;
  }
}

void Frame::op_exp() {
  const auto base = pop();
  const auto e = pop();
  if (!base || !e) return;
  const unsigned exp_bytes = e->byte_length();
  if (!charge(static_cast<std::int64_t>(50) * exp_bytes)) {
    fail(Status::OutOfGas);
    return;
  }
  cycles_ += 900ULL * exp_bytes;  // square-and-multiply per exponent byte
  push(U256::exp(*base, *e));
}

void Frame::op_sensor() {
  if (config_.profile != VmProfile::TinyEvm || !config_.iot_opcodes) {
    fail(Status::InvalidOpcode);
    return;
  }
  if (msg_.is_static) {
    // Reads are pure but actuation mutates the world; the selector decides,
    // so conservatively forbid both under STATICCALL.
    fail(Status::StaticViolation);
    return;
  }
  const auto selector = pop();
  const auto param = pop();
  if (!selector || !param) return;
  SensorRequest req;
  req.actuate = selector->bit(0);
  req.device_id = static_cast<std::uint32_t>((selector->limb(0) >> 1) &
                                             0x7FFFFFFFULL);
  req.parameter = *param;
  const auto reading = host_.sensor_access(req);
  if (!reading) {
    fail(Status::SensorFailure);
    return;
  }
  push(*reading);
}

void Frame::op_sha3() {
  const auto range = pop_range();
  if (!range) return;
  const std::uint64_t words = (range->len + 31) / 32;
  if (!charge(static_cast<std::int64_t>(6 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  cycles_ += 3200ULL * words;  // software keccak absorb cost per word
  const Bytes data = memory_.read(range->offset, range->len);
  push(U256::from_bytes(keccak256(data)));
}

void Frame::op_copy(std::span<const std::uint8_t> src, bool /*external*/) {
  const auto dst = pop();
  const auto src_off = pop();
  const auto len = pop();
  if (!dst || !src_off || !len) return;
  if (len->is_zero()) return;
  if (!dst->fits_u64() || !len->fits_u64()) {
    fail(config_.metering ? Status::OutOfGas : Status::OutOfMemory);
    return;
  }
  const std::uint64_t n = len->as_u64();
  const std::uint64_t words = (n + 31) / 32;
  if (!charge(static_cast<std::int64_t>(3 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(dst->as_u64(), n)) return;
  cycles_ += 6ULL * n;  // ~6 cycles/byte memcpy on the M3
  memory_.store_bytes(dst->as_u64(), src,
                      src_off->fits_u64() ? src_off->as_u64() : src.size(),
                      n);
}

void Frame::op_log(unsigned topic_count) {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto range = pop_range();
  if (!range) return;
  LogEntry entry;
  entry.address = msg_.self;
  for (unsigned i = 0; i < topic_count; ++i) {
    const auto t = pop();
    if (!t) return;
    entry.topics.push_back(*t);
  }
  if (!charge(static_cast<std::int64_t>(8 * range->len))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  entry.data = memory_.read(range->offset, range->len);
  host_.emit_log(std::move(entry));
}

void Frame::op_sstore() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto key = pop();
  const auto value = pop();
  if (!key || !value) return;
  if (!host_.sstore(msg_.self, *key, *value)) {
    fail(Status::StorageExhausted);
    return;
  }
}

void Frame::op_create() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto value = pop();
  if (!value) return;
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;

  CreateRequest req;
  req.sender = msg_.self;
  req.value = *value;
  req.init_code = memory_.read(range->offset, range->len);
  req.gas = gas_;
  req.depth = msg_.depth + 1;
  const CreateResult res = host_.create(req);
  if (config_.metering) gas_ = res.gas_left;
  push(res.success ? U256::from_bytes(res.address) : U256{});
}

void Frame::op_call(CallKind kind) {
  const auto gas_arg = pop();
  const auto to_arg = pop();
  if (!gas_arg || !to_arg) return;

  U256 value;
  if (kind == CallKind::Call || kind == CallKind::CallCode) {
    const auto v = pop();
    if (!v) return;
    value = *v;
  }
  if (kind == CallKind::Call && msg_.is_static && !value.is_zero()) {
    fail(Status::StaticViolation);
    return;
  }

  const auto in = pop_range();
  if (!in) return;
  const auto out = pop_range();
  if (!out) return;
  if (!grow(in->offset, in->len)) return;
  if (!grow(out->offset, out->len)) return;

  Address to{};
  const auto w = to_arg->to_word();
  std::memcpy(to.data(), w.data() + 12, 20);

  CallRequest req;
  req.kind = kind;
  req.to = to;
  req.sender = kind == CallKind::DelegateCall ? msg_.caller : msg_.self;
  req.value = kind == CallKind::DelegateCall ? msg_.value : value;
  req.data = memory_.read(in->offset, in->len);
  req.depth = msg_.depth + 1;
  req.is_static = msg_.is_static || kind == CallKind::StaticCall;
  // 63/64 rule when metering; otherwise pass the requested gas through.
  const std::int64_t available = config_.metering ? gas_ - gas_ / 64 : gas_;
  req.gas = gas_arg->fits_u64() && static_cast<std::int64_t>(
                                       gas_arg->as_u64()) < available
                ? static_cast<std::int64_t>(gas_arg->as_u64())
                : available;

  const CallResult res = host_.call(req);
  return_data_ = res.output;
  if (config_.metering) {
    gas_ -= req.gas - res.gas_left;
    if (gas_ < 0) {
      fail(Status::OutOfGas);
      return;
    }
  }
  const std::uint64_t n = std::min<std::uint64_t>(out->len, res.output.size());
  if (n > 0) memory_.store_bytes(out->offset, res.output, 0, n);
  push(U256{res.success ? 1ULL : 0ULL});
}

void Frame::op_return(bool revert) {
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;
  output_ = memory_.read(range->offset, range->len);
  status_ = revert ? Status::Revert : Status::Success;
  done_ = true;
}

}  // namespace

ExecResult Vm::execute(Host& host, const Message& msg) const {
  Frame frame(config_, host, msg);
  return frame.run();
}

}  // namespace tinyevm::evm
