#include "evm/frame.hpp"

#include <algorithm>

#include "crypto/hash.hpp"
#include "evm/opcodes.hpp"

namespace tinyevm::evm {

CodeAnalysis::CodeAnalysis(std::span<const std::uint8_t> code)
    : jumpdest_(code.size(), false) {
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const std::uint8_t op = code[pc];
    if (op == static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      jumpdest_[pc] = true;
    } else if (is_push(op)) {
      pc += push_size(op);  // immediates are data, never jump targets
    }
  }
}

DispatchTable build_dispatch_table(const EngineProfile& profile) {
  DispatchTable table;
  const bool tiny = profile.revision == EngineRevision::TinyEvm;
  for (unsigned i = 0; i < 256; ++i) {
    const auto op = static_cast<std::uint8_t>(i);
    DispatchEntry& e = table.entries[i];
    switch (classify(op, tiny, profile.iot_opcodes, profile.block_opcodes)) {
      case OpValidity::Undefined:
        e.handler = Handler::Undefined;
        continue;
      case OpValidity::Forbidden:
        e.handler = Handler::Forbidden;
        continue;
      case OpValidity::Ok:
        break;
    }
    const OpInfo& inf = info(op);
    e.handler = exec_handler(op);
    e.gas = inf.base_gas;
    e.cycles = inf.mcu_cycles;
    if (is_push(op)) {
      e.aux = static_cast<std::uint8_t>(push_size(op));
    } else if (is_dup(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0x7f);
    } else if (is_swap(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0x8f);
    } else if (is_log(op)) {
      e.aux = static_cast<std::uint8_t>(op - 0xa0);
    }
  }
  return table;
}

EngineResult Frame::run() {
  if (msg_.depth > profile_.max_call_depth) {
    return EngineResult{Status::CallDepthExceeded, {}, gas_, {}};
  }
  if (decoded_ != nullptr) {
    run_decoded();
  } else {
    run_threaded();
  }
  EngineResult result;
  result.status = status_;
  result.output = std::move(output_);
  result.gas_left = status_ == Status::Success || status_ == Status::Revert
                        ? gas_
                        : 0;
  result.stats.max_stack_pointer = stack_.max_pointer();
  result.stats.peak_memory = memory_.peak();
  result.stats.ops_executed = ops_;
  result.stats.mcu_cycles = cycles_;
  return result;
}

void Frame::op_exp() {
  const auto base = pop();
  const auto e = pop();
  if (!base || !e) return;
  const unsigned exp_bytes = e->byte_length();
  if (!charge(static_cast<std::int64_t>(50) * exp_bytes)) {
    fail(Status::OutOfGas);
    return;
  }
  cycles_ += 900ULL * exp_bytes;  // square-and-multiply per exponent byte
  push(U256::exp(*base, *e));
}

void Frame::op_sensor() {
  if (profile_.revision != EngineRevision::TinyEvm || !profile_.iot_opcodes) {
    fail(Status::InvalidOpcode);
    return;
  }
  if (msg_.is_static) {
    // Reads are pure but actuation mutates the world; the selector decides,
    // so conservatively forbid both under STATICCALL.
    fail(Status::StaticViolation);
    return;
  }
  const auto selector = pop();
  const auto param = pop();
  if (!selector || !param) return;
  SensorRequest req;
  req.actuate = selector->bit(0);
  req.device_id = static_cast<std::uint32_t>((selector->limb(0) >> 1) &
                                             0x7FFFFFFFULL);
  req.parameter = *param;
  const auto reading = host_.sensor_access(req);
  if (!reading) {
    fail(Status::SensorFailure);
    return;
  }
  push(*reading);
}

void Frame::op_sha3() {
  const auto range = pop_range();
  if (!range) return;
  const std::uint64_t words = (range->len + 31) / 32;
  if (!charge(static_cast<std::int64_t>(6 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  cycles_ += 3200ULL * words;  // software keccak absorb cost per word
  const Bytes data = memory_.read(range->offset, range->len);
  push(U256::from_bytes(keccak256(data)));
}

void Frame::op_copy(std::span<const std::uint8_t> src, bool /*external*/) {
  const auto dst = pop();
  const auto src_off = pop();
  const auto len = pop();
  if (!dst || !src_off || !len) return;
  if (len->is_zero()) return;
  if (!dst->fits_u64() || !len->fits_u64()) {
    fail(profile_.metering ? Status::OutOfGas : Status::OutOfMemory);
    return;
  }
  const std::uint64_t n = len->as_u64();
  const std::uint64_t words = (n + 31) / 32;
  if (!charge(static_cast<std::int64_t>(3 * words))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(dst->as_u64(), n)) return;
  cycles_ += 6ULL * n;  // ~6 cycles/byte memcpy on the M3
  memory_.store_bytes(dst->as_u64(), src,
                      src_off->fits_u64() ? src_off->as_u64() : src.size(),
                      n);
}

void Frame::op_log(unsigned topic_count) {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto range = pop_range();
  if (!range) return;
  LogEntry entry;
  entry.address = msg_.self;
  for (unsigned i = 0; i < topic_count; ++i) {
    const auto t = pop();
    if (!t) return;
    entry.topics.push_back(*t);
  }
  if (!charge(static_cast<std::int64_t>(8 * range->len))) {
    fail(Status::OutOfGas);
    return;
  }
  if (!grow(range->offset, range->len)) return;
  entry.data = memory_.read(range->offset, range->len);
  host_.emit_log(std::move(entry));
}

void Frame::op_sstore() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto key = pop();
  const auto value = pop();
  if (!key || !value) return;
  if (!host_.sstore(msg_.self, *key, *value)) {
    fail(Status::StorageExhausted);
    return;
  }
}

void Frame::op_create() {
  if (msg_.is_static) {
    fail(Status::StaticViolation);
    return;
  }
  const auto value = pop();
  if (!value) return;
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;

  CreateRequest req;
  req.sender = msg_.self;
  req.value = *value;
  req.init_code = memory_.read(range->offset, range->len);
  req.gas = gas_;
  req.depth = msg_.depth + 1;
  const CreateResult res = host_.create(req);
  if (profile_.metering) gas_ = res.gas_left;
  push(res.success ? U256::from_bytes(res.address) : U256{});
}

void Frame::op_call(CallKind kind) {
  const auto gas_arg = pop();
  const auto to_arg = pop();
  if (!gas_arg || !to_arg) return;

  U256 value;
  if (kind == CallKind::Call || kind == CallKind::CallCode) {
    const auto v = pop();
    if (!v) return;
    value = *v;
  }
  if (kind == CallKind::Call && msg_.is_static && !value.is_zero()) {
    fail(Status::StaticViolation);
    return;
  }

  const auto in = pop_range();
  if (!in) return;
  const auto out = pop_range();
  if (!out) return;
  if (!grow(in->offset, in->len)) return;
  if (!grow(out->offset, out->len)) return;

  CallRequest req;
  req.kind = kind;
  req.to = to_address(*to_arg);
  req.sender = kind == CallKind::DelegateCall ? msg_.caller : msg_.self;
  req.value = kind == CallKind::DelegateCall ? msg_.value : value;
  req.data = memory_.read(in->offset, in->len);
  req.depth = msg_.depth + 1;
  req.is_static = msg_.is_static || kind == CallKind::StaticCall;
  // 63/64 rule when metering; otherwise pass the requested gas through.
  const std::int64_t available = profile_.metering ? gas_ - gas_ / 64 : gas_;
  req.gas = gas_arg->fits_u64() && static_cast<std::int64_t>(
                                       gas_arg->as_u64()) < available
                ? static_cast<std::int64_t>(gas_arg->as_u64())
                : available;

  const CallResult res = host_.call(req);
  return_data_ = res.output;
  if (profile_.metering) {
    gas_ -= req.gas - res.gas_left;
    if (gas_ < 0) {
      fail(Status::OutOfGas);
      return;
    }
  }
  const std::uint64_t n = std::min<std::uint64_t>(out->len, res.output.size());
  if (n > 0) memory_.store_bytes(out->offset, res.output, 0, n);
  push(U256{res.success ? 1ULL : 0ULL});
}

void Frame::op_return(bool revert) {
  const auto range = pop_range();
  if (!range) return;
  if (!grow(range->offset, range->len)) return;
  output_ = memory_.read(range->offset, range->len);
  status_ = revert ? Status::Revert : Status::Success;
  done_ = true;
}

}  // namespace tinyevm::evm
