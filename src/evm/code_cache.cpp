#include "evm/code_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

namespace tinyevm::evm {

namespace {
CodeCache::Config clamp(CodeCache::Config config) {
  config.shards = std::max<std::size_t>(1, config.shards);
  return config;
}
}  // namespace

CodeCache::CodeCache() : CodeCache(Config{}) {}

CodeCache::CodeCache(Config config)
    : config_(clamp(config)),
      shard_capacity_bytes_(config_.capacity_bytes / config_.shards),
      shards_(config_.shards) {
  // Distinguish concurrent caches by construction order (the process
  // default is usually "c0"); stable for a fixed construction sequence.
  static std::atomic<std::uint64_t> next_cache_id{0};
  const std::string label =
      "c" + std::to_string(next_cache_id.fetch_add(1, std::memory_order_relaxed));
  collector_ = obs::Registry::instance().add_collector(
      [this, label](obs::Collection& out) {
        const Stats s = stats();
        const obs::LabelSet cache_label{{"cache", label}};
        out.counter("tinyevm_cache_lookups_total",
                    "Non-empty get_or_translate calls", cache_label,
                    static_cast<double>(s.lookups));
        out.counter("tinyevm_cache_hits_total", "Translation cache hits",
                    cache_label, static_cast<double>(s.hits));
        out.counter("tinyevm_cache_misses_total",
                    "Lookups that had to translate", cache_label,
                    static_cast<double>(s.misses));
        out.counter("tinyevm_cache_evictions_total",
                    "Entries dropped by the byte cap", cache_label,
                    static_cast<double>(s.evictions));
        out.counter("tinyevm_cache_oversized_total",
                    "Lookups declined by max_code_bytes", cache_label,
                    static_cast<double>(s.oversized));
        out.counter("tinyevm_cache_dup_translations_total",
                    "Racing translations discarded (wasted work)",
                    cache_label, static_cast<double>(s.dup_translations));
        out.gauge("tinyevm_cache_bytes", "Resident decoded-program bytes",
                  cache_label, static_cast<double>(s.bytes));
        out.gauge("tinyevm_cache_entries", "Resident translations",
                  cache_label, static_cast<double>(s.entries));
        out.gauge("tinyevm_cache_elide_spans",
                  "Check-elision spans across resident translations",
                  cache_label, static_cast<double>(s.elide_spans));
        out.gauge("tinyevm_cache_elide_span_slots",
                  "Stream slots covered by elide spans, resident",
                  cache_label, static_cast<double>(s.analysis.span_slots));
        out.gauge("tinyevm_cache_resolved_jumps",
                  "Dynamic jumps statically resolved, resident",
                  cache_label,
                  static_cast<double>(s.analysis.resolved_jumps));
        out.gauge("tinyevm_cache_unresolved_jumps",
                  "Dynamic jumps left every-JUMPDEST, resident",
                  cache_label,
                  static_cast<double>(s.analysis.unresolved_jumps));
        out.gauge("tinyevm_cache_dead_slots",
                  "Stream slots in proven-dead blocks, resident",
                  cache_label, static_cast<double>(s.analysis.dead_slots));
        for (std::size_t i = 0; i < shard_count(); ++i) {
          out.counter(
              "tinyevm_cache_lock_contentions_total",
              "Contended shard-mutex acquisitions, per lock stripe",
              {{"cache", label}, {"shard", std::to_string(i)}},
              static_cast<double>(
                  shards_[i].lock_contentions.load(std::memory_order_relaxed)));
        }
      });
}

std::size_t CodeCache::KeyHasher::operator()(const Key& k) const {
  // keccak output is uniformly distributed; the first 8 bytes are already
  // a perfectly good hash.
  std::uint64_t h = 0;
  std::memcpy(&h, k.hash.data(), sizeof h);
  return static_cast<std::size_t>(h ^ k.profile);
}

CodeCache::Shard& CodeCache::shard_for(const Key& key) {
  // Stripe on bits distinct from the ones the per-shard unordered_map
  // buckets on (KeyHasher uses the low word directly): mix, then take the
  // high half before reducing mod the stripe count.
  std::uint64_t h = 0;
  std::memcpy(&h, key.hash.data(), sizeof h);
  h ^= key.profile;
  h *= 0x9e3779b97f4a7c15ULL;
  return shards_[(h >> 32) % shards_.size()];
}

std::shared_ptr<const DecodedProgram> CodeCache::get_or_translate(
    std::span<const std::uint8_t> code, const TranslationProfile& profile,
    const Hash256* code_hash) {
  if (code.empty()) return nullptr;  // nothing to translate or run
  if (code.size() > config_.max_code_bytes) {
    // Oversized code is declined before hashing; charge the call to the
    // stripe the zero key maps to so the aggregate invariant still counts
    // every lookup exactly once.
    Shard& shard = shard_for(Key{});
    runtime::MutexLock lock(shard.mu, shard.lock_contentions);
    ++shard.lookups;
    ++shard.oversized;
    return nullptr;
  }
  const Key key{code_hash ? *code_hash : keccak256(code), profile.key()};
  Shard& shard = shard_for(key);
  {
    runtime::MutexLock lock(shard.mu, shard.lock_contentions);
    ++shard.lookups;
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      if (it->second != shard.lru.begin()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      }
      return it->second->program;
    }
    ++shard.misses;
  }

  // Translate outside the lock: concurrent first executions of the same
  // code may both translate, and the loser below adopts the winner's copy.
  auto program =
      std::make_shared<const DecodedProgram>(translate(code, profile));
  const std::size_t bytes = program->byte_size();

  runtime::MutexLock lock(shard.mu, shard.lock_contentions);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost the translate race: a concurrent execution of the same code
    // cached its copy first. Adopt the winner's entry and count the
    // discarded work — under parallel corpus deployment this is the path
    // TSan and the contention tests must see exercised.
    ++shard.dup_translations;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->program;
  }
  if (bytes > shard_capacity_bytes_) {
    // Would evict this whole stripe and still not fit; hand it to this one
    // execution without caching.
    return program;
  }
  shard.lru.push_front(Entry{key, program, bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  while (shard.bytes > shard_capacity_bytes_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return program;
}

void CodeCache::accumulate(const Shard& shard, Stats& s) const {
  s.lookups += shard.lookups;
  s.hits += shard.hits;
  s.misses += shard.misses;
  s.evictions += shard.evictions;
  s.oversized += shard.oversized;
  s.dup_translations += shard.dup_translations;
  s.lock_contentions +=
      shard.lock_contentions.load(std::memory_order_relaxed);
  s.bytes += shard.bytes;
  s.entries += shard.index.size();
  for (const Entry& entry : shard.lru) {
    s.elide_spans += entry.program->spans.size();
    const DecodedProgram::AnalysisSummary& a = entry.program->analysis;
    s.analysis.resolved_jumps += a.resolved_jumps;
    s.analysis.unresolved_jumps += a.unresolved_jumps;
    s.analysis.dead_blocks += a.dead_blocks;
    s.analysis.dead_slots += a.dead_slots;
    s.analysis.span_slots += a.span_slots;
  }
}

CodeCache::Stats CodeCache::stats() const {
  Stats s;
  s.shards = shards_.size();
  for (const Shard& shard : shards_) {
    runtime::MutexLock lock(shard.mu, shard.lock_contentions);
    accumulate(shard, s);
  }
  return s;
}

CodeCache::Stats CodeCache::shard_stats(std::size_t shard) const {
  Stats s;
  s.shards = 1;
  const Shard& target = shards_.at(shard);
  runtime::MutexLock lock(target.mu, target.lock_contentions);
  accumulate(target, s);
  return s;
}

void CodeCache::clear() {
  for (Shard& shard : shards_) {
    runtime::MutexLock lock(shard.mu, shard.lock_contentions);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
    shard.lookups = shard.hits = shard.misses = 0;
    shard.evictions = shard.oversized = shard.dup_translations = 0;
    shard.lock_contentions.store(0, std::memory_order_relaxed);
  }
}

namespace {
/// The process-wide default and the config it will be built with, behind
/// one mutex so configure/first-use ordering is well-defined even when the
/// first Vm is constructed on a worker thread.
struct SharedDefaultState {
  std::mutex mu;
  std::shared_ptr<CodeCache> cache;
  CodeCache::Config pending{};
};
SharedDefaultState& shared_default_state() {
  static SharedDefaultState state;
  return state;
}
}  // namespace

const std::shared_ptr<CodeCache>& CodeCache::shared_default() {
  auto& state = shared_default_state();
  std::lock_guard lock(state.mu);
  if (!state.cache) {
    state.cache = std::make_shared<CodeCache>(state.pending);
  }
  return state.cache;
}

bool CodeCache::configure_shared_default(const Config& config) {
  auto& state = shared_default_state();
  std::lock_guard lock(state.mu);
  if (state.cache) return false;  // first use won; the config is frozen
  state.pending = config;
  return true;
}

}  // namespace tinyevm::evm
