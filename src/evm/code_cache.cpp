#include "evm/code_cache.hpp"

#include <cstring>

namespace tinyevm::evm {

CodeCache::CodeCache() : config_(Config{}) {}

CodeCache::CodeCache(Config config) : config_(config) {}

std::size_t CodeCache::KeyHasher::operator()(const Key& k) const {
  // keccak output is uniformly distributed; the first 8 bytes are already
  // a perfectly good hash.
  std::uint64_t h = 0;
  std::memcpy(&h, k.hash.data(), sizeof h);
  return static_cast<std::size_t>(h ^ k.profile);
}

std::shared_ptr<const DecodedProgram> CodeCache::get_or_translate(
    std::span<const std::uint8_t> code, const TranslationProfile& profile,
    const Hash256* code_hash) {
  if (code.empty()) return nullptr;  // nothing to translate or run
  if (code.size() > config_.max_code_bytes) {
    std::lock_guard lock(mu_);
    ++lookups_;
    ++oversized_;
    return nullptr;
  }
  const Key key{code_hash ? *code_hash : keccak256(code), profile.key()};
  {
    std::lock_guard lock(mu_);
    ++lookups_;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      if (it->second != lru_.begin()) {
        lru_.splice(lru_.begin(), lru_, it->second);
      }
      return it->second->program;
    }
    ++misses_;
  }

  // Translate outside the lock: concurrent first executions of the same
  // code may both translate, and the loser below adopts the winner's copy.
  auto program =
      std::make_shared<const DecodedProgram>(translate(code, profile));
  const std::size_t bytes = program->byte_size();

  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost the translate race: a concurrent execution of the same code
    // cached its copy first. Adopt the winner's entry and count the
    // discarded work — under parallel corpus deployment this is the path
    // TSan and the contention tests must see exercised.
    ++dup_translations_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->program;
  }
  if (bytes > config_.capacity_bytes) {
    // Would evict the whole cache and still not fit; hand it to this one
    // execution without caching.
    return program;
  }
  lru_.push_front(Entry{key, program, bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  while (bytes_ > config_.capacity_bytes) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  return program;
}

CodeCache::Stats CodeCache::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.lookups = lookups_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.oversized = oversized_;
  s.dup_translations = dup_translations_;
  s.bytes = bytes_;
  s.entries = index_.size();
  return s;
}

void CodeCache::clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  lookups_ = hits_ = misses_ = evictions_ = oversized_ = 0;
  dup_translations_ = 0;
}

const std::shared_ptr<CodeCache>& CodeCache::shared_default() {
  static const std::shared_ptr<CodeCache> cache =
      std::make_shared<CodeCache>();
  return cache;
}

}  // namespace tinyevm::evm
