#include "evm/analysis.hpp"

#include <algorithm>
#include <cstdio>

#include "evm/opcodes.hpp"

namespace tinyevm::evm {

namespace {

/// Superinstruction heads that occupy two stream slots (the second slot is
/// the fallback continuation the fused path skips).
bool is_fused_head(Handler h) {
  switch (h) {
    case Handler::PushBin:
    case Handler::DupBin:
    case Handler::SwapBin:
    case Handler::PushJump:
    case Handler::PushJumpI:
      return true;
    default:
      return false;
  }
}

/// Handlers after which the next (stride-aware) instruction starts a new
/// basic block.
bool ends_block(Handler h) {
  switch (h) {
    case Handler::Stop:
    case Handler::Jump:
    case Handler::JumpI:
    case Handler::PushJump:
    case Handler::PushJumpI:
    case Handler::Return:
    case Handler::Revert:
    case Handler::Invalid:
    case Handler::SelfDestruct:
    case Handler::Undefined:
    case Handler::Forbidden:
      return true;
    default:
      return false;
  }
}

bool is_push_family(Handler h) {
  switch (h) {
    case Handler::Push:
    case Handler::PushBin:
    case Handler::PushJump:
    case Handler::PushJumpI:
      return true;
    default:
      return false;
  }
}

/// Folds one instruction into a running block/span summary.
struct Summary {
  std::int32_t height = 0;
  std::int32_t require = 0;
  std::int32_t peak = 0;
  std::uint64_t static_gas = 0;
  std::uint64_t cycles = 0;
  std::uint32_t ops = 0;

  void add(const DecodedInst& inst) {
    const StackEffect ef = stack_effect(inst);
    require = std::max(require, ef.require - height);
    peak = std::max(peak, height + ef.peak);
    height += ef.delta;
    peak = std::max(peak, height);
    static_gas += inst.gas;
    cycles += inst.cycles;
    if (is_fused_head(inst.handler)) {
      static_gas += inst.gas2;
      cycles += inst.cycles2;
      ops += 2;
    } else {
      ops += 1;
    }
  }
};

}  // namespace

StackEffect stack_effect(const DecodedInst& inst) {
  const auto depth = static_cast<std::int32_t>(inst.aux);
  switch (inst.handler) {
    // No stack interaction (traps consume nothing before failing).
    case Handler::Undefined:
    case Handler::Forbidden:
    case Handler::Stop:
    case Handler::Invalid:
    case Handler::JumpDest:
      return {0, 0, 0};

    // Binary operators: pop two, push one.
    case Handler::Add:
    case Handler::Mul:
    case Handler::Sub:
    case Handler::Div:
    case Handler::Sdiv:
    case Handler::Mod:
    case Handler::Smod:
    case Handler::Exp:
    case Handler::SignExtend:
    case Handler::Lt:
    case Handler::Gt:
    case Handler::Slt:
    case Handler::Sgt:
    case Handler::Eq:
    case Handler::And:
    case Handler::Or:
    case Handler::Xor:
    case Handler::Byte:
    case Handler::Shl:
    case Handler::Shr:
    case Handler::Sar:
    case Handler::Sensor:
    case Handler::Sha3:
      return {2, -1, 0};

    case Handler::AddMod:
    case Handler::MulMod:
      return {3, -2, 0};

    // Unary in-place transforms.
    case Handler::IsZero:
    case Handler::Not:
      return {1, 0, 0};

    // Environment / block pushes.
    case Handler::Address:
    case Handler::Origin:
    case Handler::Caller:
    case Handler::CallValue:
    case Handler::CallDataSize:
    case Handler::CodeSize:
    case Handler::GasPrice:
    case Handler::ReturnDataSize:
    case Handler::Coinbase:
    case Handler::Timestamp:
    case Handler::Number:
    case Handler::Difficulty:
    case Handler::GasLimit:
    case Handler::Pc:
    case Handler::MSize:
    case Handler::Gas:
    case Handler::Push:
      return {0, 1, 1};

    // Top-of-stack replacements.
    case Handler::Balance:
    case Handler::CallDataLoad:
    case Handler::ExtCodeSize:
    case Handler::BlockHash:
    case Handler::SLoad:
    case Handler::MLoad:
      return {1, 0, 0};

    case Handler::CallDataCopy:
    case Handler::CodeCopy:
    case Handler::ReturnDataCopy:
      return {3, -3, 0};
    case Handler::ExtCodeCopy:
      return {4, -4, 0};

    case Handler::Pop:
    case Handler::Jump:
    case Handler::SelfDestruct:
      return {1, -1, 0};
    case Handler::MStore:
    case Handler::MStore8:
    case Handler::SStore:
    case Handler::JumpI:
    case Handler::Return:
    case Handler::Revert:
      return {2, -2, 0};

    case Handler::Dup:
      return {depth, 1, 1};
    case Handler::Swap:
      return {depth + 1, 0, 0};
    case Handler::Log:
      return {depth + 2, -(depth + 2), 0};

    case Handler::Create:
      return {3, -2, 0};
    case Handler::Call:
    case Handler::CallCode:
      return {7, -6, 0};
    case Handler::DelegateCall:
    case Handler::StaticCall:
      return {6, -5, 0};

    // Superinstructions: requirement, net effect, and transient peak are
    // identical fused and unfused (the fallback re-creates the same
    // intermediate push), so one row covers both executions.
    case Handler::PushBin:
      return {1, 0, 1};
    case Handler::DupBin:
      return {depth, 0, 1};
    case Handler::SwapBin:
      return {2, -1, 0};
    case Handler::PushJump:
      return {0, 0, 1};
    case Handler::PushJumpI:
      return {1, -1, 1};
  }
  return {0, 0, 0};  // unreachable: the switch is total over Handler
}

bool is_elidable(Handler h) {
  switch (h) {
    // Pure arithmetic / comparison / bitwise (EXP excluded: dynamic gas).
    case Handler::Add:
    case Handler::Mul:
    case Handler::Sub:
    case Handler::Div:
    case Handler::Sdiv:
    case Handler::Mod:
    case Handler::Smod:
    case Handler::AddMod:
    case Handler::MulMod:
    case Handler::SignExtend:
    case Handler::Lt:
    case Handler::Gt:
    case Handler::Slt:
    case Handler::Sgt:
    case Handler::Eq:
    case Handler::IsZero:
    case Handler::And:
    case Handler::Or:
    case Handler::Xor:
    case Handler::Not:
    case Handler::Byte:
    case Handler::Shl:
    case Handler::Shr:
    case Handler::Sar:
    // Message-environment reads with no host round-trip.
    case Handler::Address:
    case Handler::Origin:
    case Handler::Caller:
    case Handler::CallValue:
    case Handler::CallDataLoad:
    case Handler::CallDataSize:
    case Handler::CodeSize:
    case Handler::ReturnDataSize:
    case Handler::GasPrice:
    // Pure stack shuffles (GAS is *not* here: it reads live gas, which a
    // span bulk-charges up front).
    case Handler::Pop:
    case Handler::Pc:
    case Handler::MSize:
    case Handler::Push:
    case Handler::Dup:
    case Handler::Swap:
    case Handler::PushBin:
    case Handler::DupBin:
    case Handler::SwapBin:
      return true;
    default:
      return false;
  }
}

std::string_view to_string(BlockExit exit) {
  switch (exit) {
    case BlockExit::FallThrough: return "fallthrough";
    case BlockExit::Jump: return "jump";
    case BlockExit::Branch: return "branch";
    case BlockExit::Terminate: return "terminate";
    case BlockExit::Trap: return "trap";
    case BlockExit::CodeEnd: return "code-end";
  }
  return "?";
}

std::string_view to_string(Diagnostic::Kind kind) {
  switch (kind) {
    case Diagnostic::Kind::UnreachableBlock: return "unreachable-block";
    case Diagnostic::Kind::TruncatedPush: return "truncated-push";
    case Diagnostic::Kind::InvalidOpcode: return "invalid-opcode";
    case Diagnostic::Kind::ForbiddenOpcode: return "forbidden-opcode";
    case Diagnostic::Kind::BadJumpTarget: return "bad-jump-target";
    case Diagnostic::Kind::JumpIntoPushdata: return "jump-into-pushdata";
    case Diagnostic::Kind::StackMergeConflict: return "stack-merge-conflict";
    case Diagnostic::Kind::ProvenUnderflow: return "proven-underflow";
    case Diagnostic::Kind::ProvenOverflow: return "proven-overflow";
  }
  return "?";
}

std::size_t AnalysisReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

void attach_elide_spans(DecodedProgram& program) {
  program.spans.clear();
  program.entry_span = kNoJumpTarget;
  const auto n = static_cast<std::uint32_t>(program.insts.size());

  // Builds the span starting at `start`; returns its index or the
  // kNoJumpTarget sentinel when the run is too short to pay for the entry
  // test. JUMPDEST is not elidable, so a span can never cross into the
  // next block. When the run is stopped by the block's terminating fused
  // jump and that jump's target resolved at translate time, the jump is
  // swallowed as the span's tail: with gas/watchdog pre-charged, enough
  // room for the transient push, and a known-valid destination, the pair
  // cannot fail either — and a loop's back edge then runs inside the span.
  const auto build = [&](std::uint32_t start) -> std::uint32_t {
    Summary sum;
    std::uint32_t i = start;
    while (i < n && is_elidable(program.insts[i].handler)) {
      const DecodedInst& inst = program.insts[i];
      sum.add(inst);
      i += is_fused_head(inst.handler) ? 2 : 1;
    }
    const std::uint32_t slots = i - start;
    std::uint8_t tail = kSpanTailNone;
    std::uint32_t tail_slots = 0;
    if (i < n) {
      const DecodedInst& t = program.insts[i];
      if ((t.handler == Handler::PushJump ||
           t.handler == Handler::PushJumpI) &&
          t.target != kNoJumpTarget) {
        sum.add(t);
        tail = t.handler == Handler::PushJump ? kSpanTailJump
                                              : kSpanTailJumpI;
        tail_slots = 2;
      }
    }
    if (slots + tail_slots < kMinElideSpanSlots) return kNoJumpTarget;
    if (sum.require > 0xFFFF || sum.peak > 0xFFFF) return kNoJumpTarget;
    ElideSpan span;
    span.first = start;
    span.count = slots;
    span.ops = sum.ops;
    span.static_gas = sum.static_gas;
    span.cycles = sum.cycles;
    span.stack_require = static_cast<std::uint16_t>(sum.require);
    span.stack_peak = static_cast<std::uint16_t>(sum.peak);
    span.tail = tail;
    program.spans.push_back(span);
    return static_cast<std::uint32_t>(program.spans.size() - 1);
  };

  // The entry block's span is checked before the first dispatch; when the
  // program *starts* with a JUMPDEST its handler runs the span instead, so
  // the JUMPDEST's own prologue accounting is never skipped.
  if (n != 0 && program.insts[0].handler != Handler::JumpDest) {
    program.entry_span = build(0);
  }
  // Fallback-continuation slots are never JUMPDEST, so a linear scan visits
  // every leader exactly once. The span index rides in the JUMPDEST's
  // otherwise-unused `target` field.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (program.insts[i].handler == Handler::JumpDest) {
      program.insts[i].target = build(i + 1);
    }
  }
  program.spans.shrink_to_fit();
}

AnalysisReport analyze(const DecodedProgram& program,
                       const AnalysisOptions& options) {
  AnalysisReport report;
  const auto n = static_cast<std::uint32_t>(program.insts.size());
  if (n == 0) return report;
  const DecodedInst* const insts = program.insts.data();

  // --- leaders -----------------------------------------------------------
  std::vector<std::uint8_t> leader(n, 0);
  leader[0] = 1;
  for (std::uint32_t i = 0; i < n;) {
    const Handler h = insts[i].handler;
    if (h == Handler::JumpDest) leader[i] = 1;
    const std::uint32_t stride = is_fused_head(h) ? 2 : 1;
    if (ends_block(h) && i + stride < n) leader[i + stride] = 1;
    i += stride;
  }

  // --- block construction ------------------------------------------------
  auto& blocks = report.blocks;
  std::vector<std::uint32_t> block_of(n, 0);
  for (std::uint32_t i = 0; i < n;) {
    if (leader[i]) {
      blocks.emplace_back();
      blocks.back().first = i;
      blocks.back().pc = insts[i].pc;
    }
    BasicBlock& b = blocks.back();
    const DecodedInst& inst = insts[i];
    const std::uint32_t stride = is_fused_head(inst.handler) ? 2 : 1;
    Summary sum{b.stack_delta, b.stack_require, b.stack_peak,
                b.static_gas,  b.cycles,        b.ops};
    sum.add(inst);
    b.stack_require = sum.require;
    b.stack_delta = sum.height;
    b.stack_peak = sum.peak;
    b.static_gas = sum.static_gas;
    b.cycles = sum.cycles;
    b.ops = sum.ops;
    block_of[i] = static_cast<std::uint32_t>(blocks.size() - 1);
    if (stride == 2) block_of[i + 1] = block_of[i];
    b.count += stride;

    switch (inst.handler) {
      case Handler::Stop:
      case Handler::Return:
      case Handler::Revert:
      case Handler::SelfDestruct:
        b.exit = BlockExit::Terminate;
        break;
      case Handler::Invalid:
      case Handler::Undefined:
      case Handler::Forbidden:
        b.exit = BlockExit::Trap;
        break;
      case Handler::Jump:
        b.exit = BlockExit::Jump;
        b.dynamic_exit = true;
        break;
      case Handler::JumpI:
        b.exit = BlockExit::Branch;
        b.dynamic_exit = true;
        break;
      case Handler::PushJump:
        b.exit = BlockExit::Jump;
        b.target = inst.target;  // instruction index; mapped below
        break;
      case Handler::PushJumpI:
        b.exit = BlockExit::Branch;
        b.target = inst.target;
        break;
      default:
        b.exit = i + stride < n && leader[i + stride] ? BlockExit::FallThrough
                                                      : BlockExit::CodeEnd;
        break;
    }
    i += stride;
  }
  // Static jump targets were recorded as instruction indices (always
  // JUMPDEST leaders); map them to block ids.
  for (BasicBlock& b : blocks) {
    if ((b.exit == BlockExit::Jump || b.exit == BlockExit::Branch) &&
        !b.dynamic_exit && b.target != BasicBlock::kNoBlock) {
      b.target = block_of[b.target];
    }
    const std::size_t next = static_cast<std::size_t>(&b - blocks.data()) + 1;
    b.pc_end = next < blocks.size()
                   ? blocks[next].pc
                   : static_cast<std::uint32_t>(program.code_size);
  }

  // --- reachability ------------------------------------------------------
  // Worklist from the entry block. A reachable dynamic jump conservatively
  // reaches every JUMPDEST-led block (destinations are run-time values).
  std::vector<std::uint32_t> work;
  const auto reach = [&](std::uint32_t idx) {
    if (!blocks[idx].reachable) {
      blocks[idx].reachable = true;
      work.push_back(idx);
    }
  };
  reach(0);
  bool dynamic_sink_armed = false;
  while (!work.empty()) {
    const std::uint32_t idx = work.back();
    work.pop_back();
    const BasicBlock& b = blocks[idx];
    const std::uint32_t next = idx + 1;
    switch (b.exit) {
      case BlockExit::FallThrough:
        reach(next);
        break;
      case BlockExit::Branch:
        if (next < blocks.size()) reach(next);
        [[fallthrough]];
      case BlockExit::Jump:
        if (b.target != BasicBlock::kNoBlock && !b.dynamic_exit) {
          reach(b.target);
        }
        if (b.dynamic_exit && !dynamic_sink_armed) {
          dynamic_sink_armed = true;
          for (std::uint32_t j = 0; j < blocks.size(); ++j) {
            if (insts[blocks[j].first].handler == Handler::JumpDest) reach(j);
          }
        }
        break;
      case BlockExit::Terminate:
      case BlockExit::Trap:
      case BlockExit::CodeEnd:
        break;
    }
  }

  // --- entry-height dataflow --------------------------------------------
  // Heights propagate along statically-known edges only; a block that is
  // also a dynamic-jump sink keeps whatever static edges prove (the lint
  // reports are warnings about *provable* facts, not a soundness bound for
  // the elided path — that one re-checks at run time). Heights move
  // monotonically unknown -> value -> conflict, so the loop terminates.
  std::vector<std::uint8_t> conflict_reported(blocks.size(), 0);
  blocks[0].entry_height = 0;
  work.push_back(0);
  while (!work.empty()) {
    const std::uint32_t idx = work.back();
    work.pop_back();
    BasicBlock& b = blocks[idx];
    if (!b.entry_height_known()) continue;
    const std::int32_t out = b.entry_height + b.stack_delta;
    const auto propose = [&](std::uint32_t succ) {
      BasicBlock& t = blocks[succ];
      if (t.entry_height == out ||
          t.entry_height == BasicBlock::kConflictHeight) {
        return;
      }
      if (t.entry_height == BasicBlock::kUnknownHeight) {
        t.entry_height = out;
      } else {
        t.entry_height = BasicBlock::kConflictHeight;
        if (!conflict_reported[succ]) {
          conflict_reported[succ] = 1;
          Diagnostic d;
          d.kind = Diagnostic::Kind::StackMergeConflict;
          d.severity = Severity::Warning;
          d.pc = t.pc;
          d.block = succ;
          d.message = "incoming edges disagree on the entry stack height";
          report.diagnostics.push_back(std::move(d));
        }
      }
      work.push_back(succ);
    };
    switch (b.exit) {
      case BlockExit::FallThrough:
        propose(idx + 1);
        break;
      case BlockExit::Branch:
        if (idx + 1 < blocks.size()) propose(idx + 1);
        [[fallthrough]];
      case BlockExit::Jump:
        if (b.target != BasicBlock::kNoBlock && !b.dynamic_exit) {
          propose(b.target);
        }
        break;
      case BlockExit::Terminate:
      case BlockExit::Trap:
      case BlockExit::CodeEnd:
        break;
    }
  }

  // --- diagnostics -------------------------------------------------------
  const auto emit = [&](Diagnostic::Kind kind, Severity severity,
                        std::uint32_t pc, std::uint32_t block,
                        std::string message) {
    report.diagnostics.push_back(
        Diagnostic{kind, severity, pc, block, std::move(message)});
  };
  for (std::uint32_t idx = 0; idx < blocks.size(); ++idx) {
    const BasicBlock& b = blocks[idx];
    if (!b.reachable) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "dead code: no path reaches block %u (pc %u..%u)", idx,
                    b.pc, b.pc_end);
      emit(Diagnostic::Kind::UnreachableBlock, Severity::Warning, b.pc, idx,
           buf);
      continue;  // facts below are about code that can execute
    }
    const DecodedInst& last = insts[b.first + b.count - 1];
    if (b.exit == BlockExit::Trap && last.handler != Handler::Invalid) {
      const bool undefined = last.handler == Handler::Undefined;
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s opcode at pc %u",
                    undefined ? "undefined" : "profile-forbidden", last.pc);
      std::string msg = buf;
      if (last.pc < options.code.size()) {
        char byte_buf[16];
        std::snprintf(byte_buf, sizeof byte_buf, " (byte 0x%02x)",
                      options.code[last.pc]);
        msg += byte_buf;
      }
      emit(undefined ? Diagnostic::Kind::InvalidOpcode
                     : Diagnostic::Kind::ForbiddenOpcode,
           Severity::Error, last.pc, idx, std::move(msg));
    }
    if ((b.exit == BlockExit::Jump || b.exit == BlockExit::Branch) &&
        !b.dynamic_exit && b.target == BasicBlock::kNoBlock) {
      // Fused PUSH+JUMP/JUMPI whose immediate is not a valid JUMPDEST:
      // the jump faults when executed (JUMPI: when taken).
      const DecodedInst& head = insts[b.first + b.count - 2];
      const bool conditional = b.exit == BlockExit::Branch;
      const std::uint64_t dest =
          head.imm.fits_u64() ? head.imm.as_u64() : ~0ULL;
      const bool into_pushdata =
          dest < options.code.size() &&
          options.code[dest] ==
              static_cast<std::uint8_t>(Opcode::JUMPDEST);
      char buf[112];
      std::snprintf(buf, sizeof buf,
                    "%s at pc %u targets %s0x%llx%s",
                    conditional ? "JUMPI" : "JUMP", head.pc,
                    into_pushdata ? "a JUMPDEST byte inside pushdata at "
                                  : "invalid destination ",
                    static_cast<unsigned long long>(
                        head.imm.fits_u64() ? dest : 0),
                    head.imm.fits_u64() ? "" : " (oversized)");
      emit(into_pushdata ? Diagnostic::Kind::JumpIntoPushdata
                         : Diagnostic::Kind::BadJumpTarget,
           conditional ? Severity::Warning : Severity::Error, head.pc, idx,
           buf);
    }
    if (b.entry_height_known()) {
      if (b.entry_height < b.stack_require) {
        char buf[112];
        std::snprintf(buf, sizeof buf,
                      "block %u underflows: entry height %d < required %d",
                      idx, b.entry_height, b.stack_require);
        emit(Diagnostic::Kind::ProvenUnderflow, Severity::Error, b.pc, idx,
             buf);
      } else if (options.stack_limit != 0 &&
                 static_cast<std::size_t>(b.entry_height + b.stack_peak) >
                     options.stack_limit) {
        char buf[112];
        std::snprintf(buf, sizeof buf,
                      "block %u overflows: entry height %d + peak %d > "
                      "limit %zu",
                      idx, b.entry_height, b.stack_peak,
                      options.stack_limit);
        emit(Diagnostic::Kind::ProvenOverflow, Severity::Error, b.pc, idx,
             buf);
      }
    }
  }
  // Truncated PUSH immediates (implicit zero-fill past the end of code) —
  // usually a sign of fallthrough into what was meant to be data.
  for (std::uint32_t i = 0; i < n;) {
    const DecodedInst& inst = insts[i];
    if (is_push_family(inst.handler) &&
        static_cast<std::uint64_t>(inst.pc) + 1 + inst.aux >
            program.code_size) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "PUSH%u at pc %u runs past the end of code "
                    "(zero-filled)",
                    inst.aux, inst.pc);
      emit(Diagnostic::Kind::TruncatedPush, Severity::Warning, inst.pc,
           block_of[i], buf);
    }
    i += is_fused_head(inst.handler) ? 2 : 1;
  }

  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.pc != b.pc) return a.pc < b.pc;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return report;
}

}  // namespace tinyevm::evm
