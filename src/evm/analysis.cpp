#include "evm/analysis.hpp"

#include <algorithm>
#include <cstdio>

#include "evm/opcodes.hpp"

namespace tinyevm::evm {

namespace {

/// Superinstruction heads that occupy two stream slots (the second slot is
/// the fallback continuation the fused path skips).
bool is_fused_head(Handler h) {
  switch (h) {
    case Handler::PushBin:
    case Handler::DupBin:
    case Handler::SwapBin:
    case Handler::PushJump:
    case Handler::PushJumpI:
      return true;
    default:
      return false;
  }
}

/// Handlers after which the next (stride-aware) instruction starts a new
/// basic block.
bool ends_block(Handler h) {
  switch (h) {
    case Handler::Stop:
    case Handler::Jump:
    case Handler::JumpI:
    case Handler::PushJump:
    case Handler::PushJumpI:
    case Handler::Return:
    case Handler::Revert:
    case Handler::Invalid:
    case Handler::SelfDestruct:
    case Handler::Undefined:
    case Handler::Forbidden:
      return true;
    default:
      return false;
  }
}

bool is_push_family(Handler h) {
  switch (h) {
    case Handler::Push:
    case Handler::PushBin:
    case Handler::PushJump:
    case Handler::PushJumpI:
      return true;
    default:
      return false;
  }
}

/// Folds one instruction into a running block/span summary.
struct Summary {
  std::int32_t height = 0;
  std::int32_t require = 0;
  std::int32_t peak = 0;
  std::uint64_t static_gas = 0;
  std::uint64_t cycles = 0;
  std::uint32_t ops = 0;

  void add(const DecodedInst& inst) {
    const StackEffect ef = stack_effect(inst);
    require = std::max(require, ef.require - height);
    peak = std::max(peak, height + ef.peak);
    height += ef.delta;
    peak = std::max(peak, height);
    static_gas += inst.gas;
    cycles += inst.cycles;
    if (is_fused_head(inst.handler)) {
      static_gas += inst.gas2;
      cycles += inst.cycles2;
      ops += 2;
    } else {
      ops += 1;
    }
  }
};

// ===== CFG construction (shared by analyze / analyze_for_translation) =====

struct Cfg {
  std::vector<BasicBlock> blocks;
  std::vector<std::uint32_t> block_of;  ///< instruction slot -> block id
};

Cfg build_cfg(const DecodedProgram& program) {
  Cfg cfg;
  const auto n = static_cast<std::uint32_t>(program.insts.size());
  const DecodedInst* const insts = program.insts.data();

  std::vector<std::uint8_t> leader(n, 0);
  leader[0] = 1;
  for (std::uint32_t i = 0; i < n;) {
    const Handler h = insts[i].handler;
    if (h == Handler::JumpDest) leader[i] = 1;
    const std::uint32_t stride = is_fused_head(h) ? 2 : 1;
    if (ends_block(h) && i + stride < n) leader[i + stride] = 1;
    i += stride;
  }

  auto& blocks = cfg.blocks;
  cfg.block_of.assign(n, 0);
  for (std::uint32_t i = 0; i < n;) {
    if (leader[i]) {
      blocks.emplace_back();
      blocks.back().first = i;
      blocks.back().pc = insts[i].pc;
    }
    BasicBlock& b = blocks.back();
    const DecodedInst& inst = insts[i];
    const std::uint32_t stride = is_fused_head(inst.handler) ? 2 : 1;
    Summary sum{b.stack_delta, b.stack_require, b.stack_peak,
                b.static_gas,  b.cycles,        b.ops};
    sum.add(inst);
    b.stack_require = sum.require;
    b.stack_delta = sum.height;
    b.stack_peak = sum.peak;
    b.static_gas = sum.static_gas;
    b.cycles = sum.cycles;
    b.ops = sum.ops;
    cfg.block_of[i] = static_cast<std::uint32_t>(blocks.size() - 1);
    if (stride == 2) cfg.block_of[i + 1] = cfg.block_of[i];
    b.count += stride;

    switch (inst.handler) {
      case Handler::Stop:
      case Handler::Return:
      case Handler::Revert:
      case Handler::SelfDestruct:
        b.exit = BlockExit::Terminate;
        break;
      case Handler::Invalid:
      case Handler::Undefined:
      case Handler::Forbidden:
        b.exit = BlockExit::Trap;
        break;
      case Handler::Jump:
        b.exit = BlockExit::Jump;
        b.dynamic_exit = true;
        break;
      case Handler::JumpI:
        b.exit = BlockExit::Branch;
        b.dynamic_exit = true;
        break;
      case Handler::PushJump:
        b.exit = BlockExit::Jump;
        b.target = inst.target;  // instruction index; mapped below
        break;
      case Handler::PushJumpI:
        b.exit = BlockExit::Branch;
        b.target = inst.target;
        break;
      default:
        b.exit = i + stride < n && leader[i + stride] ? BlockExit::FallThrough
                                                      : BlockExit::CodeEnd;
        break;
    }
    i += stride;
  }
  // Static jump targets were recorded as instruction indices (always
  // JUMPDEST leaders); map them to block ids.
  for (BasicBlock& b : blocks) {
    if ((b.exit == BlockExit::Jump || b.exit == BlockExit::Branch) &&
        !b.dynamic_exit && b.target != BasicBlock::kNoBlock) {
      b.target = cfg.block_of[b.target];
    }
    const std::size_t next = static_cast<std::size_t>(&b - blocks.data()) + 1;
    b.pc_end = next < blocks.size()
                   ? blocks[next].pc
                   : static_cast<std::uint32_t>(program.code_size);
  }
  return cfg;
}

// ===== constant-propagation dataflow ======================================
//
// Abstract domain: a top-relative suffix of the operand stack, each slot
// Known(U256) or Unknown; slots deeper than the tracked window are
// implicitly Unknown. Values only weaken (Known -> Unknown, suffix only
// shrinks at joins), so the fixpoint terminates; resolutions are extracted
// only after the fixpoint, when states are final and sound for every
// concrete execution.

constexpr std::size_t kMaxTrackedStack = 24;

struct AbsVal {
  bool known = false;
  U256 value;
};

struct AbsStack {
  std::vector<AbsVal> v;  ///< top of stack at the back

  void push(const AbsVal& x) {
    if (v.size() == kMaxTrackedStack) v.erase(v.begin());
    v.push_back(x);
  }
  AbsVal pop() {
    if (v.empty()) return {};  // below the tracked window: Unknown
    AbsVal x = v.back();
    v.pop_back();
    return x;
  }
  [[nodiscard]] AbsVal peek(std::size_t depth) const {
    return depth < v.size() ? v[v.size() - 1 - depth] : AbsVal{};
  }
  void set(std::size_t depth, const AbsVal& x) {
    if (depth < v.size()) v[v.size() - 1 - depth] = x;
  }
};

AbsVal fold_bin(Handler h, const AbsVal& a, const AbsVal& s) {
  if (!a.known || !s.known || !is_fusible_bin(h)) return {};
  U256 r = a.value;
  apply_fused_bin(h, r, s.value);
  return {true, r};
}

/// One instruction's effect on the abstract stack. Fused pairs are applied
/// as the whole pair (the caller strides over the fallback slot).
void transfer_inst(AbsStack& st, const DecodedInst& inst) {
  const Handler h = inst.handler;
  switch (h) {
    case Handler::Push:
      st.push({true, inst.imm});
      return;
    case Handler::Pc:
      st.push({true, U256{inst.pc}});
      return;
    case Handler::Pop:
      st.pop();
      return;
    case Handler::JumpDest:
      return;
    case Handler::Dup:
      st.push(st.peek(static_cast<std::size_t>(inst.aux) - 1));
      return;
    case Handler::Swap: {
      const auto d = static_cast<std::size_t>(inst.aux);
      const AbsVal top = st.peek(0);
      const AbsVal deep = st.peek(d);
      st.set(0, deep);
      st.set(d, top);
      return;
    }
    case Handler::IsZero: {
      const AbsVal a = st.pop();
      st.push(a.known ? AbsVal{true, U256{a.value.is_zero() ? 1ULL : 0ULL}}
                      : AbsVal{});
      return;
    }
    case Handler::Not: {
      const AbsVal a = st.pop();
      st.push(a.known ? AbsVal{true, ~a.value} : AbsVal{});
      return;
    }
    case Handler::AddMod:
    case Handler::MulMod: {
      const AbsVal a = st.pop();
      const AbsVal b = st.pop();
      const AbsVal m = st.pop();
      if (a.known && b.known && m.known) {
        st.push({true, h == Handler::AddMod
                           ? U256::addmod(a.value, b.value, m.value)
                           : U256::mulmod(a.value, b.value, m.value)});
      } else {
        st.push({});
      }
      return;
    }
    case Handler::PushBin: {
      const AbsVal s = st.pop();
      st.push(fold_bin(static_cast<Handler>(inst.aux2),
                       AbsVal{true, inst.imm}, s));
      return;
    }
    case Handler::DupBin: {
      const AbsVal a = st.peek(static_cast<std::size_t>(inst.aux) - 1);
      const AbsVal s = st.pop();
      st.push(fold_bin(static_cast<Handler>(inst.aux2), a, s));
      return;
    }
    case Handler::SwapBin: {
      const AbsVal v1 = st.pop();
      const AbsVal v2 = st.pop();
      st.push(fold_bin(static_cast<Handler>(inst.aux2), v2, v1));
      return;
    }
    case Handler::PushJump:
      return;  // push imm, jump pops it: net zero
    case Handler::PushJumpI:
      st.pop();  // the condition
      return;
    case Handler::Jump:
      st.pop();
      return;
    case Handler::JumpI:
      st.pop();
      st.pop();
      return;
    default:
      break;
  }
  if (is_fusible_bin(h)) {  // plain binary operator with a foldable result
    const AbsVal a = st.pop();
    const AbsVal s = st.pop();
    st.push(fold_bin(h, a, s));
    return;
  }
  // Everything else: pop `require` values, push `require + delta` Unknowns.
  // Sound for every remaining handler (environment reads, memory, host
  // calls, LOG): none leaves a statically known stack value behind.
  const StackEffect ef = stack_effect(inst);
  for (std::int32_t i = 0; i < ef.require; ++i) st.pop();
  for (std::int32_t i = 0; i < ef.require + ef.delta; ++i) st.push({});
}

/// Runs a block's instructions over `in`, returning the out-stack. When the
/// block ends in a plain JUMP/JUMPI, `jump_operand` receives the abstract
/// destination (the top of stack right before the jump executes).
AbsStack run_block(const AbsStack& in, const BasicBlock& b,
                   const DecodedInst* insts, AbsVal* jump_operand) {
  AbsStack st = in;
  const std::uint32_t end = b.first + b.count;
  for (std::uint32_t i = b.first; i < end;) {
    const DecodedInst& inst = insts[i];
    if (jump_operand &&
        (inst.handler == Handler::Jump || inst.handler == Handler::JumpI)) {
      *jump_operand = st.peek(0);
    }
    transfer_inst(st, inst);
    i += is_fused_head(inst.handler) ? 2 : 1;
  }
  return st;
}

struct AbsState {
  bool reached = false;
  AbsStack stack;
};

/// Meet of `src` into `dst`: suffix truncated to the common length, slots
/// stay Known only where both sides agree. Returns whether `dst` changed.
bool join_into(AbsState& dst, const AbsStack& src) {
  if (!dst.reached) {
    dst.reached = true;
    dst.stack = src;
    return true;
  }
  bool changed = false;
  auto& dv = dst.stack.v;
  const std::size_t keep = std::min(dv.size(), src.v.size());
  if (dv.size() != keep) {
    dv.erase(dv.begin(), dv.end() - static_cast<std::ptrdiff_t>(keep));
    changed = true;
  }
  for (std::size_t k = 0; k < keep; ++k) {
    AbsVal& d = dv[dv.size() - 1 - k];
    const AbsVal& s = src.v[src.v.size() - 1 - k];
    if (d.known && (!s.known || !(d.value == s.value))) {
      d = {};
      changed = true;
    }
  }
  return changed;
}

/// How the fixpoint classified a block's plain dynamic JUMP/JUMPI.
enum class JumpKind : std::uint8_t {
  None,      ///< block does not end in a plain dynamic jump
  Unknown,   ///< operand not a propagated constant: every-JUMPDEST sink
  Resolved,  ///< operand is a constant naming a valid JUMPDEST
  KnownBad,  ///< operand is a constant; the jump always faults
};

struct JumpResolution {
  JumpKind kind = JumpKind::None;
  std::uint32_t target_inst = kNoJumpTarget;  ///< Resolved: JUMPDEST slot
  U256 dest;                                  ///< Resolved/KnownBad operand
};

struct Dataflow {
  std::vector<AbsState> in;          ///< fixpoint entry state per block
  std::vector<JumpResolution> jumps; ///< per block
  bool exhausted = false;            ///< budget blown: no resolutions
};

Dataflow run_constant_dataflow(const DecodedProgram& program,
                               const Cfg& cfg) {
  const auto& blocks = cfg.blocks;
  const DecodedInst* const insts = program.insts.data();
  const std::size_t nb = blocks.size();
  Dataflow dfl;
  dfl.in.resize(nb);
  dfl.jumps.resize(nb);
  if (nb == 0) return dfl;

  std::vector<std::uint8_t> queued(nb, 0);
  std::vector<std::uint32_t> work;
  const auto enqueue = [&](std::uint32_t b) {
    if (!queued[b]) {
      queued[b] = 1;
      work.push_back(b);
    }
  };
  const auto join_edge = [&](std::uint32_t succ, const AbsStack& out) {
    if (join_into(dfl.in[succ], out)) enqueue(succ);
  };
  dfl.in[0].reached = true;
  enqueue(0);

  // A jump whose operand stays unknown may land on any JUMPDEST: joining
  // the empty suffix (= no claims) into every JUMPDEST-led block. The join
  // value is constant, so arming once is enough.
  bool sink_armed = false;
  const auto arm_sink = [&] {
    if (sink_armed) return;
    sink_armed = true;
    const AbsStack empty;
    for (std::uint32_t j = 0; j < nb; ++j) {
      if (insts[blocks[j].first].handler == Handler::JumpDest) {
        join_edge(j, empty);
      }
    }
  };

  // Hard backstop well above the lattice-descent bound (each block re-runs
  // only when its entry state weakens). Blowing it abandons every
  // resolution, falling back to the sound every-JUMPDEST behaviour.
  std::size_t budget = 64 * nb + 64;
  while (!work.empty()) {
    if (budget-- == 0) {
      dfl.exhausted = true;
      break;
    }
    const std::uint32_t idx = work.back();
    work.pop_back();
    queued[idx] = 0;
    const BasicBlock& b = blocks[idx];
    AbsVal op;
    const AbsStack out = run_block(dfl.in[idx].stack, b, insts, &op);
    switch (b.exit) {
      case BlockExit::FallThrough:
        join_edge(idx + 1, out);
        break;
      case BlockExit::Branch:
        if (idx + 1 < nb) join_edge(idx + 1, out);
        [[fallthrough]];
      case BlockExit::Jump:
        if (!b.dynamic_exit) {
          if (b.target != BasicBlock::kNoBlock) join_edge(b.target, out);
        } else if (op.known) {
          const std::uint64_t dest =
              op.value.fits_u64() ? op.value.as_u64() : ~0ULL;
          if (dest < program.jump_map.size() &&
              program.jump_map[dest] != kNoJumpTarget) {
            join_edge(cfg.block_of[program.jump_map[dest]], out);
          }
          // Known-bad destination: the jump faults, no successor.
        } else {
          arm_sink();
        }
        break;
      case BlockExit::Terminate:
      case BlockExit::Trap:
      case BlockExit::CodeEnd:
        break;
    }
  }
  if (dfl.exhausted) {
    // Conservative fallback: treat every reachable dynamic exit as
    // unresolved (sound; span widening and WCET are simply declined).
    for (std::size_t i = 0; i < nb; ++i) {
      if (blocks[i].dynamic_exit) dfl.jumps[i].kind = JumpKind::Unknown;
    }
    return dfl;
  }
  // Extraction, after the fixpoint only: mid-iteration constants may still
  // weaken, final ones are sound for every execution reaching the jump.
  for (std::uint32_t idx = 0; idx < nb; ++idx) {
    const BasicBlock& b = blocks[idx];
    if (!b.dynamic_exit) continue;
    if (!dfl.in[idx].reached) {
      dfl.jumps[idx].kind = JumpKind::Unknown;
      continue;
    }
    AbsVal op;
    run_block(dfl.in[idx].stack, b, insts, &op);
    if (!op.known) {
      dfl.jumps[idx].kind = JumpKind::Unknown;
      continue;
    }
    dfl.jumps[idx].dest = op.value;
    const std::uint64_t dest = op.value.fits_u64() ? op.value.as_u64() : ~0ULL;
    if (dest < program.jump_map.size() &&
        program.jump_map[dest] != kNoJumpTarget) {
      dfl.jumps[idx].kind = JumpKind::Resolved;
      dfl.jumps[idx].target_inst = program.jump_map[dest];
    } else {
      dfl.jumps[idx].kind = JumpKind::KnownBad;
    }
  }
  return dfl;
}

/// Writes the fixpoint's jump resolutions into the block graph: a Resolved
/// exit becomes a static edge (`resolved` + `target`), a KnownBad exit a
/// proven fault (`resolved`, no target).
void stamp_resolutions(Cfg& cfg, const Dataflow& dfl) {
  for (std::uint32_t idx = 0; idx < cfg.blocks.size(); ++idx) {
    BasicBlock& b = cfg.blocks[idx];
    const JumpResolution& r = dfl.jumps[idx];
    if (r.kind == JumpKind::Resolved) {
      b.resolved = true;
      b.target = cfg.block_of[r.target_inst];
    } else if (r.kind == JumpKind::KnownBad) {
      b.resolved = true;  // target stays kNoBlock: the jump always faults
    }
  }
}

/// Enumerates block `idx`'s successors on the resolved CFG. Returns true
/// when the exit is an unresolved dynamic jump (the every-JUMPDEST sink);
/// the sink's member blocks are not passed to `fn`.
template <typename Fn>
bool frozen_successors(const std::vector<BasicBlock>& blocks,
                       std::uint32_t idx, Fn&& fn) {
  const BasicBlock& b = blocks[idx];
  bool sink = false;
  switch (b.exit) {
    case BlockExit::FallThrough:
      fn(idx + 1);
      break;
    case BlockExit::Branch:
      if (idx + 1 < blocks.size()) fn(idx + 1);
      [[fallthrough]];
    case BlockExit::Jump:
      if (b.dynamic_exit && !b.resolved) {
        sink = true;
      } else if (b.target != BasicBlock::kNoBlock) {
        fn(b.target);
      }
      break;
    case BlockExit::Terminate:
    case BlockExit::Trap:
    case BlockExit::CodeEnd:
      break;
  }
  return sink;
}

/// Reachability over the resolved CFG; marks BasicBlock::reachable.
/// Returns whether an unresolved dynamic jump is reachable (sink armed).
bool frozen_reach(std::vector<BasicBlock>& blocks,
                  const DecodedInst* insts) {
  std::vector<std::uint32_t> work;
  const auto reach = [&](std::uint32_t idx) {
    if (!blocks[idx].reachable) {
      blocks[idx].reachable = true;
      work.push_back(idx);
    }
  };
  reach(0);
  bool sink_armed = false;
  while (!work.empty()) {
    const std::uint32_t idx = work.back();
    work.pop_back();
    if (frozen_successors(blocks, idx, reach) && !sink_armed) {
      sink_armed = true;
      for (std::uint32_t j = 0; j < blocks.size(); ++j) {
        if (insts[blocks[j].first].handler == Handler::JumpDest) reach(j);
      }
    }
  }
  return sink_armed;
}

// ===== dominators, natural loops, trip bounds, WCET =======================

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > ~b ? ~0ULL : a + b;
}
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  return b != 0 && a > ~0ULL / b ? ~0ULL : a * b;
}

constexpr std::uint64_t kMaxTripBound = 1ULL << 20;

// --- affine symbolic domain for the trip-count prover ---------------------
// Values relative to the loop-header entry stack: Unknown, a constant, or
// Rel(slot) + offset where Rel(slot) is the entry value `slot` elements
// below the top. Only +/- keep the affine form; everything else folds
// constants or gives Unknown.

constexpr std::size_t kSymSeedDepth = 40;

struct SymVal {
  enum Kind : std::uint8_t { Unk, Const, Aff };
  Kind kind = Unk;
  std::uint32_t slot = 0;  ///< Aff: header-entry depth of the base value
  U256 off;                ///< Const: the value; Aff: the added offset
};

struct SymStack {
  std::vector<SymVal> v;  ///< top at the back
  bool underflow = false;

  void push(const SymVal& x) { v.push_back(x); }
  SymVal pop() {
    if (v.empty()) {
      underflow = true;
      return {};
    }
    SymVal x = v.back();
    v.pop_back();
    return x;
  }
  [[nodiscard]] SymVal peek(std::size_t d) const {
    return d < v.size() ? v[v.size() - 1 - d] : SymVal{};
  }
  void set(std::size_t d, const SymVal& x) {
    if (d < v.size()) v[v.size() - 1 - d] = x;
  }
};

SymVal sym_fold(Handler h, const SymVal& a, const SymVal& s) {
  if (h == Handler::Add) {
    if (a.kind == SymVal::Const && s.kind == SymVal::Const) {
      return {SymVal::Const, 0, a.off + s.off};
    }
    if (a.kind == SymVal::Aff && s.kind == SymVal::Const) {
      return {SymVal::Aff, a.slot, a.off + s.off};
    }
    if (a.kind == SymVal::Const && s.kind == SymVal::Aff) {
      return {SymVal::Aff, s.slot, a.off + s.off};
    }
    return {};
  }
  if (h == Handler::Sub) {  // a - s
    if (a.kind == SymVal::Const && s.kind == SymVal::Const) {
      return {SymVal::Const, 0, a.off - s.off};
    }
    if (a.kind == SymVal::Aff && s.kind == SymVal::Const) {
      return {SymVal::Aff, a.slot, a.off - s.off};
    }
    return {};
  }
  if (a.kind == SymVal::Const && s.kind == SymVal::Const &&
      is_fusible_bin(h)) {
    U256 r = a.off;
    apply_fused_bin(h, r, s.off);
    return {SymVal::Const, 0, r};
  }
  return {};
}

void transfer_sym(SymStack& st, const DecodedInst& inst) {
  const Handler h = inst.handler;
  switch (h) {
    case Handler::Push:
      st.push({SymVal::Const, 0, inst.imm});
      return;
    case Handler::Pc:
      st.push({SymVal::Const, 0, U256{inst.pc}});
      return;
    case Handler::Pop:
      st.pop();
      return;
    case Handler::JumpDest:
      return;
    case Handler::Dup:
      st.push(st.peek(static_cast<std::size_t>(inst.aux) - 1));
      return;
    case Handler::Swap: {
      const auto d = static_cast<std::size_t>(inst.aux);
      const SymVal top = st.peek(0);
      const SymVal deep = st.peek(d);
      st.set(0, deep);
      st.set(d, top);
      return;
    }
    case Handler::PushBin: {
      const SymVal s = st.pop();
      st.push(sym_fold(static_cast<Handler>(inst.aux2),
                       {SymVal::Const, 0, inst.imm}, s));
      return;
    }
    case Handler::DupBin: {
      const SymVal a = st.peek(static_cast<std::size_t>(inst.aux) - 1);
      const SymVal s = st.pop();
      st.push(sym_fold(static_cast<Handler>(inst.aux2), a, s));
      return;
    }
    case Handler::SwapBin: {
      const SymVal v1 = st.pop();
      const SymVal v2 = st.pop();
      st.push(sym_fold(static_cast<Handler>(inst.aux2), v2, v1));
      return;
    }
    case Handler::PushJump:
      return;
    case Handler::PushJumpI:
      st.pop();
      return;
    case Handler::Jump:
      st.pop();
      return;
    case Handler::JumpI:
      st.pop();
      st.pop();
      return;
    default:
      break;
  }
  if (is_fusible_bin(h)) {
    const SymVal a = st.pop();
    const SymVal s = st.pop();
    st.push(sym_fold(h, a, s));
    return;
  }
  const StackEffect ef = stack_effect(inst);
  for (std::int32_t i = 0; i < ef.require; ++i) st.pop();
  for (std::int32_t i = 0; i < ef.require + ef.delta; ++i) st.push({});
}

/// The block-terminating instruction (the fused head when the block ends in
/// a superinstruction pair — the last slot is then the fallback).
const DecodedInst& terminator(const std::vector<BasicBlock>& blocks,
                              std::uint32_t idx, const DecodedInst* insts) {
  const BasicBlock& b = blocks[idx];
  if (b.count >= 2 && is_fused_head(insts[b.first + b.count - 2].handler)) {
    return insts[b.first + b.count - 2];
  }
  return insts[b.first + b.count - 1];
}

/// Tries to prove a trip bound for one natural loop: single latch whose
/// conditional branch takes the back edge, a unique in-loop path
/// header->latch (a chain — nested loops fail this structurally), a loop
/// counter that is affine in one header-entry stack slot, and a known
/// constant entry value from every non-back-edge predecessor. The bound is
/// the worst-case number of header entries per frame execution; any
/// in-loop early exit only lowers the real count.
void prove_trip_bound(LoopInfo& loop, const std::vector<BasicBlock>& blocks,
                      const std::vector<std::vector<std::uint32_t>>& pred,
                      const Dataflow& dfl, const DecodedInst* insts) {
  loop.bounded = false;
  if (loop.latch == BasicBlock::kNoBlock) {
    loop.note = "multiple latches";
    return;
  }
  const BasicBlock& latch = blocks[loop.latch];
  if (latch.exit != BlockExit::Branch) {
    loop.note = "unconditional back edge";
    return;
  }
  if (latch.target != loop.header) {
    loop.note = "back edge is not the taken branch";
    return;
  }
  std::vector<std::uint8_t> in_loop(blocks.size(), 0);
  for (const std::uint32_t m : loop.blocks) in_loop[m] = 1;
  if (loop.latch + 1 < blocks.size() && in_loop[loop.latch + 1]) {
    loop.note = "latch fallthrough stays in the loop";
    return;
  }

  // Unique in-loop path header -> latch.
  std::vector<std::uint32_t> chain;
  std::vector<std::uint8_t> seen(blocks.size(), 0);
  std::uint32_t cur = loop.header;
  while (true) {
    if (seen[cur] || chain.size() > loop.blocks.size()) {
      loop.note = "loop body branches";
      return;
    }
    seen[cur] = 1;
    chain.push_back(cur);
    if (cur == loop.latch) break;
    std::uint32_t next = BasicBlock::kNoBlock;
    int fanout = 0;
    frozen_successors(blocks, cur, [&](std::uint32_t s) {
      if (in_loop[s]) {
        ++fanout;
        next = s;
      }
    });
    if (fanout != 1) {
      loop.note = "loop body branches";
      return;
    }
    cur = next;
  }

  // Symbolic execution of the chain relative to the header entry stack.
  SymStack st;
  st.v.resize(kSymSeedDepth);
  for (std::size_t i = 0; i < kSymSeedDepth; ++i) {
    st.v[i] = {SymVal::Aff,
               static_cast<std::uint32_t>(kSymSeedDepth - 1 - i), U256{}};
  }
  SymVal cond;
  for (const std::uint32_t bidx : chain) {
    const BasicBlock& b = blocks[bidx];
    const std::uint32_t end = b.first + b.count;
    for (std::uint32_t i = b.first; i < end;) {
      const DecodedInst& inst = insts[i];
      if (bidx == loop.latch && &inst == &terminator(blocks, bidx, insts)) {
        cond = inst.handler == Handler::JumpI ? st.peek(1) : st.peek(0);
      }
      transfer_sym(st, inst);
      i += is_fused_head(inst.handler) ? 2 : 1;
    }
  }
  if (st.underflow) {
    loop.note = "loop pops below the tracked window";
    return;
  }
  if (cond.kind == SymVal::Const) {
    if (cond.off.is_zero()) {
      loop.bounded = true;
      loop.trip_bound = 1;
      loop.note = "branch condition constant-zero";
    } else {
      loop.note = "branch condition constant-true";
    }
    return;
  }
  if (cond.kind != SymVal::Aff) {
    loop.note = "counter is not affine in one entry slot";
    return;
  }
  const std::uint32_t slot = cond.slot;
  const SymVal next = st.peek(slot);
  if (next.kind != SymVal::Aff || next.slot != slot) {
    loop.note = "counter is not self-affine across an iteration";
    return;
  }
  const U256 step = next.off;  // per-iteration delta of the counter slot

  // Entry value: every reachable non-back-edge predecessor of the header
  // must leave the same known constant in the counter slot.
  bool have_n = false;
  U256 entry_n;
  for (const std::uint32_t p : pred[loop.header]) {
    if (p == loop.latch || !blocks[p].reachable) continue;
    const AbsStack out = run_block(dfl.in[p].stack, blocks[p], insts, nullptr);
    const AbsVal val = out.peek(slot);
    if (!val.known || (have_n && !(val.value == entry_n))) {
      loop.note = "loop entry value unknown";
      return;
    }
    have_n = true;
    entry_n = val.value;
  }
  if (!have_n) {
    loop.note = "loop entry value unknown";
    return;
  }

  // Condition at latch evaluation t (1-based): kappa_t = M - (t-1)*c with
  // M = N + d_c and c = -step (all mod 2^256). The loop repeats while
  // kappa != 0 and exits the first time it hits zero; when M and c fit in
  // 64 bits (or both negate into 64 bits, covering increment loops) and c
  // divides M, that is t = M/c + 1 — with no earlier wrap, since the
  // sequence is strictly decreasing over the integers until zero.
  if (step.is_zero()) {
    const U256 m = entry_n + cond.off;
    if (m.is_zero()) {
      loop.bounded = true;
      loop.trip_bound = 1;
      loop.note = "counter starts at the exit value";
    } else {
      loop.note = "counter step is zero";
    }
    return;
  }
  const U256 m_pos = entry_n + cond.off;
  const U256 c_pos = U256{} - step;
  const U256 m_neg = U256{} - m_pos;
  const U256 c_neg = step;
  std::uint64_t m64 = 0;
  std::uint64_t c64 = 0;
  if (m_pos.fits_u64() && c_pos.fits_u64()) {
    m64 = m_pos.as_u64();
    c64 = c_pos.as_u64();
  } else if (m_neg.fits_u64() && c_neg.fits_u64()) {
    m64 = m_neg.as_u64();
    c64 = c_neg.as_u64();
  } else {
    loop.note = "counter values out of 64-bit range";
    return;
  }
  if (c64 == 0 || m64 % c64 != 0) {
    loop.note = "step does not divide the counter range";
    return;
  }
  const std::uint64_t trips = m64 / c64 + 1;
  if (trips > kMaxTripBound) {
    loop.note = "trip bound too large";
    return;
  }
  loop.bounded = true;
  loop.trip_bound = trips;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "affine counter in entry slot %u: %llu iterations", slot,
                static_cast<unsigned long long>(trips));
  loop.note = buf;
}

/// Loops, irreducibility, and the per-dimension WCET certificate, over the
/// resolved CFG (reachability and entry heights already computed).
void compute_structure(AnalysisReport& report, const DecodedProgram& program,
                       const Dataflow& dfl, bool sink_reachable,
                       std::uint32_t sink_pc) {
  auto& blocks = report.blocks;
  const DecodedInst* const insts = program.insts.data();
  const auto nb = static_cast<std::uint32_t>(blocks.size());
  char buf[128];

  // --- stack dimension ----------------------------------------------------
  // Needs no loop bounds: entry heights are consistent around any cycle or
  // they would have become kConflictHeight. It does need a closed CFG —
  // heights at a sink block only reflect its static edges, not the
  // unresolved jump that may enter at any height.
  {
    WcetBound& s = report.wcet.stack;
    if (sink_reachable) {
      std::snprintf(buf, sizeof buf, "unresolved dynamic jump at pc %u",
                    sink_pc);
      s.reason = buf;
    } else {
      s.certified = true;
      for (std::uint32_t i = 0; i < nb && s.certified; ++i) {
        const BasicBlock& b = blocks[i];
        if (!b.reachable) continue;
        if (!b.entry_height_known()) {
          s.certified = false;
          std::snprintf(buf, sizeof buf,
                        "entry stack height unknown for block at pc %u",
                        b.pc);
          s.reason = buf;
          break;
        }
        s.bound = std::max(
            s.bound, static_cast<std::uint64_t>(b.entry_height + b.stack_peak));
      }
      if (!s.certified) s.bound = 0;
    }
  }

  const auto decline = [&](const char* why) {
    report.wcet.gas.reason = why;
    report.wcet.cycles.reason = why;
    report.wcet.ops.reason = why;
  };
  if (sink_reachable) {
    std::snprintf(buf, sizeof buf, "unresolved dynamic jump at pc %u",
                  sink_pc);
    decline(buf);
    return;  // no closed CFG: loop structure would be meaningless
  }

  // --- successor / predecessor lists over reachable blocks ---------------
  std::vector<std::vector<std::uint32_t>> succ(nb);
  std::vector<std::vector<std::uint32_t>> pred(nb);
  for (std::uint32_t i = 0; i < nb; ++i) {
    if (!blocks[i].reachable) continue;
    frozen_successors(blocks, i, [&](std::uint32_t s) {
      succ[i].push_back(s);
      pred[s].push_back(i);
    });
  }

  // --- dominators (Cooper-Harvey-Kennedy over a reverse post-order) ------
  std::vector<std::uint32_t> order;  // reverse post-order
  {
    std::vector<std::uint8_t> state(nb, 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    std::vector<std::uint32_t> post;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      if (child < succ[node].size()) {
        const std::uint32_t s = succ[node][child++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[node] = 2;
        post.push_back(node);
        stack.pop_back();
      }
    }
    order.assign(post.rbegin(), post.rend());
  }
  std::vector<std::uint32_t> rpo_pos(nb, BasicBlock::kNoBlock);
  for (std::uint32_t i = 0; i < order.size(); ++i) rpo_pos[order[i]] = i;
  std::vector<std::uint32_t> idom(nb, BasicBlock::kNoBlock);
  idom[0] = 0;
  const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (rpo_pos[a] > rpo_pos[b]) a = idom[a];
      while (rpo_pos[b] > rpo_pos[a]) b = idom[b];
    }
    return a;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (const std::uint32_t b : order) {
      if (b == 0) continue;
      std::uint32_t new_idom = BasicBlock::kNoBlock;
      for (const std::uint32_t p : pred[b]) {
        if (idom[p] == BasicBlock::kNoBlock) continue;
        new_idom = new_idom == BasicBlock::kNoBlock ? p
                                                    : intersect(new_idom, p);
      }
      if (new_idom != BasicBlock::kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  const auto dominates = [&](std::uint32_t v, std::uint32_t u) {
    while (rpo_pos[u] > rpo_pos[v]) u = idom[u];
    return u == v;
  };

  // --- natural loops from dominator back edges ---------------------------
  std::vector<std::pair<std::uint32_t, std::uint32_t>> back_edges;  // u -> h
  for (const std::uint32_t u : order) {
    for (const std::uint32_t h : succ[u]) {
      if (dominates(h, u)) back_edges.emplace_back(u, h);
    }
  }
  auto& loops = report.loops;
  std::vector<std::uint32_t> loop_of_header(nb, BasicBlock::kNoLoop);
  for (const auto& [u, h] : back_edges) {
    std::uint32_t li = loop_of_header[h];
    if (li == BasicBlock::kNoLoop) {
      li = static_cast<std::uint32_t>(loops.size());
      loop_of_header[h] = li;
      loops.emplace_back();
      loops[li].header = h;
      loops[li].latch = u;
      loops[li].blocks.push_back(h);
    } else {
      loops[li].latch = BasicBlock::kNoBlock;  // second latch: merged loop
    }
    LoopInfo& loop = loops[li];
    // Reverse-flood from the latch, stopping at the header.
    std::vector<std::uint32_t> work{u};
    while (!work.empty()) {
      const std::uint32_t x = work.back();
      work.pop_back();
      if (std::find(loop.blocks.begin(), loop.blocks.end(), x) !=
          loop.blocks.end()) {
        continue;
      }
      loop.blocks.push_back(x);
      for (const std::uint32_t p : pred[x]) work.push_back(p);
    }
  }
  for (LoopInfo& loop : loops) {
    std::sort(loop.blocks.begin(), loop.blocks.end());
  }
  // Innermost-loop labels: assign largest first so the smallest wins.
  {
    std::vector<std::uint32_t> by_size(loops.size());
    for (std::uint32_t i = 0; i < by_size.size(); ++i) by_size[i] = i;
    std::sort(by_size.begin(), by_size.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return loops[a].blocks.size() > loops[b].blocks.size();
              });
    for (const std::uint32_t li : by_size) {
      for (const std::uint32_t m : loops[li].blocks) blocks[m].loop = li;
    }
    for (std::uint32_t li = 0; li < loops.size(); ++li) {
      std::uint32_t best = BasicBlock::kNoLoop;
      for (std::uint32_t lj = 0; lj < loops.size(); ++lj) {
        if (lj == li) continue;
        const auto& member = loops[lj].blocks;
        if (std::find(member.begin(), member.end(), loops[li].header) ==
            member.end()) {
          continue;
        }
        if (best == BasicBlock::kNoLoop ||
            member.size() < loops[best].blocks.size()) {
          best = lj;
        }
      }
      loops[li].parent = best;
    }
  }

  // --- irreducibility: a cycle must survive removing back edges ----------
  std::vector<std::uint32_t> topo;  // Kahn order over forward edges
  {
    // An edge u->s is "forward" unless s dominates u (a back edge).
    std::vector<std::uint32_t> indeg(nb, 0);
    std::uint32_t reachable_count = 0;
    for (std::uint32_t i = 0; i < nb; ++i) {
      if (!blocks[i].reachable) continue;
      ++reachable_count;
      for (const std::uint32_t s : succ[i]) {
        if (!dominates(s, i)) ++indeg[s];
      }
    }
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < nb; ++i) {
      if (blocks[i].reachable && indeg[i] == 0) ready.push_back(i);
    }
    while (!ready.empty()) {
      const std::uint32_t x = ready.back();
      ready.pop_back();
      topo.push_back(x);
      for (const std::uint32_t s : succ[x]) {
        if (!dominates(s, x) && --indeg[s] == 0) ready.push_back(s);
      }
    }
    report.irreducible = topo.size() != reachable_count;
  }

  // --- trip bounds --------------------------------------------------------
  for (LoopInfo& loop : loops) {
    prove_trip_bound(loop, blocks, pred, dfl, insts);
  }

  // --- gas / cycles / ops gates ------------------------------------------
  if (report.irreducible) {
    decline("irreducible control flow");
    return;
  }
  for (const LoopInfo& loop : loops) {
    if (!loop.bounded) {
      std::snprintf(buf, sizeof buf, "loop at pc %u unbounded: %s",
                    blocks[loop.header].pc, loop.note.c_str());
      decline(buf);
      return;
    }
  }
  const auto dyn_gas_op = [](Handler h) {
    switch (h) {
      case Handler::Exp:
      case Handler::Sha3:
      case Handler::CallDataCopy:
      case Handler::CodeCopy:
      case Handler::ReturnDataCopy:
      case Handler::ExtCodeCopy:
      case Handler::MLoad:
      case Handler::MStore:
      case Handler::MStore8:
      case Handler::Log:
      case Handler::Create:
      case Handler::Call:
      case Handler::CallCode:
      case Handler::DelegateCall:
      case Handler::StaticCall:
      case Handler::Return:
      case Handler::Revert:
        return true;  // per-byte charges or memory-expansion gas
      default:
        return false;
    }
  };
  const auto dyn_cycle_op = [](Handler h) {
    switch (h) {
      case Handler::Exp:
      case Handler::Sha3:
      case Handler::CallDataCopy:
      case Handler::CodeCopy:
      case Handler::ReturnDataCopy:
      case Handler::ExtCodeCopy:
        return true;  // modeled cycles scale with operand sizes
      default:
        return false;
    }
  };
  bool gas_ok = true;
  bool cycles_ok = true;
  for (std::uint32_t i = 0; i < nb; ++i) {
    const BasicBlock& b = blocks[i];
    if (!b.reachable) continue;
    const std::uint32_t end = b.first + b.count;
    for (std::uint32_t j = b.first; j < end;) {
      const DecodedInst& inst = insts[j];
      if (gas_ok && dyn_gas_op(inst.handler)) {
        std::snprintf(buf, sizeof buf, "dynamically-priced op at pc %u",
                      inst.pc);
        report.wcet.gas.reason = buf;
        gas_ok = false;
      }
      if (cycles_ok && dyn_cycle_op(inst.handler)) {
        std::snprintf(buf, sizeof buf, "dynamic-cycle op at pc %u", inst.pc);
        report.wcet.cycles.reason = buf;
        cycles_ok = false;
      }
      j += is_fused_head(inst.handler) ? 2 : 1;
    }
  }

  // --- longest-path DP over the back-edge-free DAG -----------------------
  // Node cost = the block's static totals; a bounded loop header adds
  // (trips - 1) x the loop body's totals, covering every re-entry. The
  // answer is the max over *all* reachable blocks: a faulting execution's
  // consumption is a prefix of some path, so prefixes must be covered too.
  std::vector<std::uint64_t> in_gas(nb, 0);
  std::vector<std::uint64_t> in_cyc(nb, 0);
  std::vector<std::uint64_t> in_ops(nb, 0);
  std::uint64_t max_gas = 0;
  std::uint64_t max_cyc = 0;
  std::uint64_t max_ops = 0;
  for (const std::uint32_t x : topo) {
    std::uint64_t gas = sat_add(in_gas[x], blocks[x].static_gas);
    std::uint64_t cyc = sat_add(in_cyc[x], blocks[x].cycles);
    std::uint64_t ops = sat_add(in_ops[x], blocks[x].ops);
    if (loop_of_header[x] != BasicBlock::kNoLoop) {
      const LoopInfo& loop = loops[loop_of_header[x]];
      std::uint64_t body_gas = 0;
      std::uint64_t body_cyc = 0;
      std::uint64_t body_ops = 0;
      for (const std::uint32_t m : loop.blocks) {
        body_gas = sat_add(body_gas, blocks[m].static_gas);
        body_cyc = sat_add(body_cyc, blocks[m].cycles);
        body_ops = sat_add(body_ops, blocks[m].ops);
      }
      const std::uint64_t extra = loop.trip_bound - 1;
      gas = sat_add(gas, sat_mul(extra, body_gas));
      cyc = sat_add(cyc, sat_mul(extra, body_cyc));
      ops = sat_add(ops, sat_mul(extra, body_ops));
    }
    max_gas = std::max(max_gas, gas);
    max_cyc = std::max(max_cyc, cyc);
    max_ops = std::max(max_ops, ops);
    for (const std::uint32_t s : succ[x]) {
      if (dominates(s, x)) continue;  // back edge: folded into the header
      in_gas[s] = std::max(in_gas[s], gas);
      in_cyc[s] = std::max(in_cyc[s], cyc);
      in_ops[s] = std::max(in_ops[s], ops);
    }
  }
  if (gas_ok) {
    report.wcet.gas.certified = true;
    report.wcet.gas.bound = max_gas;
  }
  if (cycles_ok) {
    report.wcet.cycles.certified = true;
    report.wcet.cycles.bound = max_cyc;
  }
  report.wcet.ops.certified = true;
  report.wcet.ops.bound = max_ops;
}

}  // namespace

StackEffect stack_effect(const DecodedInst& inst) {
  const auto depth = static_cast<std::int32_t>(inst.aux);
  switch (inst.handler) {
    // No stack interaction (traps consume nothing before failing).
    case Handler::Undefined:
    case Handler::Forbidden:
    case Handler::Stop:
    case Handler::Invalid:
    case Handler::JumpDest:
      return {0, 0, 0};

    // Binary operators: pop two, push one.
    case Handler::Add:
    case Handler::Mul:
    case Handler::Sub:
    case Handler::Div:
    case Handler::Sdiv:
    case Handler::Mod:
    case Handler::Smod:
    case Handler::Exp:
    case Handler::SignExtend:
    case Handler::Lt:
    case Handler::Gt:
    case Handler::Slt:
    case Handler::Sgt:
    case Handler::Eq:
    case Handler::And:
    case Handler::Or:
    case Handler::Xor:
    case Handler::Byte:
    case Handler::Shl:
    case Handler::Shr:
    case Handler::Sar:
    case Handler::Sensor:
    case Handler::Sha3:
      return {2, -1, 0};

    case Handler::AddMod:
    case Handler::MulMod:
      return {3, -2, 0};

    // Unary in-place transforms.
    case Handler::IsZero:
    case Handler::Not:
      return {1, 0, 0};

    // Environment / block pushes.
    case Handler::Address:
    case Handler::Origin:
    case Handler::Caller:
    case Handler::CallValue:
    case Handler::CallDataSize:
    case Handler::CodeSize:
    case Handler::GasPrice:
    case Handler::ReturnDataSize:
    case Handler::Coinbase:
    case Handler::Timestamp:
    case Handler::Number:
    case Handler::Difficulty:
    case Handler::GasLimit:
    case Handler::Pc:
    case Handler::MSize:
    case Handler::Gas:
    case Handler::Push:
      return {0, 1, 1};

    // Top-of-stack replacements.
    case Handler::Balance:
    case Handler::CallDataLoad:
    case Handler::ExtCodeSize:
    case Handler::BlockHash:
    case Handler::SLoad:
    case Handler::MLoad:
      return {1, 0, 0};

    case Handler::CallDataCopy:
    case Handler::CodeCopy:
    case Handler::ReturnDataCopy:
      return {3, -3, 0};
    case Handler::ExtCodeCopy:
      return {4, -4, 0};

    case Handler::Pop:
    case Handler::Jump:
    case Handler::SelfDestruct:
      return {1, -1, 0};
    case Handler::MStore:
    case Handler::MStore8:
    case Handler::SStore:
    case Handler::JumpI:
    case Handler::Return:
    case Handler::Revert:
      return {2, -2, 0};

    case Handler::Dup:
      return {depth, 1, 1};
    case Handler::Swap:
      return {depth + 1, 0, 0};
    case Handler::Log:
      return {depth + 2, -(depth + 2), 0};

    case Handler::Create:
      return {3, -2, 0};
    case Handler::Call:
    case Handler::CallCode:
      return {7, -6, 0};
    case Handler::DelegateCall:
    case Handler::StaticCall:
      return {6, -5, 0};

    // Superinstructions: requirement, net effect, and transient peak are
    // identical fused and unfused (the fallback re-creates the same
    // intermediate push), so one row covers both executions.
    case Handler::PushBin:
      return {1, 0, 1};
    case Handler::DupBin:
      return {depth, 0, 1};
    case Handler::SwapBin:
      return {2, -1, 0};
    case Handler::PushJump:
      return {0, 0, 1};
    case Handler::PushJumpI:
      return {1, -1, 1};
  }
  return {0, 0, 0};  // unreachable: the switch is total over Handler
}

bool is_elidable(Handler h) {
  switch (h) {
    // Pure arithmetic / comparison / bitwise (EXP excluded: dynamic gas).
    case Handler::Add:
    case Handler::Mul:
    case Handler::Sub:
    case Handler::Div:
    case Handler::Sdiv:
    case Handler::Mod:
    case Handler::Smod:
    case Handler::AddMod:
    case Handler::MulMod:
    case Handler::SignExtend:
    case Handler::Lt:
    case Handler::Gt:
    case Handler::Slt:
    case Handler::Sgt:
    case Handler::Eq:
    case Handler::IsZero:
    case Handler::And:
    case Handler::Or:
    case Handler::Xor:
    case Handler::Not:
    case Handler::Byte:
    case Handler::Shl:
    case Handler::Shr:
    case Handler::Sar:
    // Message-environment reads with no host round-trip.
    case Handler::Address:
    case Handler::Origin:
    case Handler::Caller:
    case Handler::CallValue:
    case Handler::CallDataLoad:
    case Handler::CallDataSize:
    case Handler::CodeSize:
    case Handler::ReturnDataSize:
    case Handler::GasPrice:
    // Pure stack shuffles (GAS is *not* here: it reads live gas, which a
    // span bulk-charges up front).
    case Handler::Pop:
    case Handler::Pc:
    case Handler::MSize:
    case Handler::Push:
    case Handler::Dup:
    case Handler::Swap:
    case Handler::PushBin:
    case Handler::DupBin:
    case Handler::SwapBin:
      return true;
    default:
      return false;
  }
}

std::string_view to_string(BlockExit exit) {
  switch (exit) {
    case BlockExit::FallThrough: return "fallthrough";
    case BlockExit::Jump: return "jump";
    case BlockExit::Branch: return "branch";
    case BlockExit::Terminate: return "terminate";
    case BlockExit::Trap: return "trap";
    case BlockExit::CodeEnd: return "code-end";
  }
  return "?";
}

std::string_view to_string(Diagnostic::Kind kind) {
  switch (kind) {
    case Diagnostic::Kind::UnreachableBlock: return "unreachable-block";
    case Diagnostic::Kind::TruncatedPush: return "truncated-push";
    case Diagnostic::Kind::InvalidOpcode: return "invalid-opcode";
    case Diagnostic::Kind::ForbiddenOpcode: return "forbidden-opcode";
    case Diagnostic::Kind::BadJumpTarget: return "bad-jump-target";
    case Diagnostic::Kind::JumpIntoPushdata: return "jump-into-pushdata";
    case Diagnostic::Kind::StackMergeConflict: return "stack-merge-conflict";
    case Diagnostic::Kind::ProvenUnderflow: return "proven-underflow";
    case Diagnostic::Kind::ProvenOverflow: return "proven-overflow";
  }
  return "?";
}

std::size_t AnalysisReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

std::size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

void attach_elide_spans(DecodedProgram& program) {
  program.spans.clear();
  program.entry_span = kNoJumpTarget;
  program.analysis.span_slots = 0;
  const auto n = static_cast<std::uint32_t>(program.insts.size());

  // Builds the span starting at `start`; returns its index or the
  // kNoJumpTarget sentinel when the run is too short to pay for the entry
  // test. JUMPDEST is not elidable, so a span can never cross into the
  // next block. When the run is stopped by the block's terminating jump
  // and that jump's target is known statically — a fused PUSH+JUMP/JUMPI,
  // or a plain JUMP/JUMPI the dataflow resolved — the jump is swallowed as
  // the span's tail: with gas/watchdog pre-charged, enough room for any
  // transient push, and a known-valid destination, it cannot fail either —
  // and a loop's back edge then runs inside the span.
  const auto build = [&](std::uint32_t start) -> std::uint32_t {
    Summary sum;
    std::uint32_t i = start;
    while (i < n && is_elidable(program.insts[i].handler)) {
      const DecodedInst& inst = program.insts[i];
      sum.add(inst);
      i += is_fused_head(inst.handler) ? 2 : 1;
    }
    const std::uint32_t slots = i - start;
    std::uint8_t tail = kSpanTailNone;
    std::uint32_t tail_slots = 0;
    if (i < n) {
      const DecodedInst& t = program.insts[i];
      if ((t.handler == Handler::PushJump ||
           t.handler == Handler::PushJumpI) &&
          t.target != kNoJumpTarget) {
        sum.add(t);
        tail = t.handler == Handler::PushJump ? kSpanTailJump
                                              : kSpanTailJumpI;
        tail_slots = 2;
      } else if ((t.handler == Handler::Jump ||
                  t.handler == Handler::JumpI) &&
                 t.target != kNoJumpTarget) {
        // Plain dynamic jump whose operand the constant dataflow resolved:
        // the destination is already on the elided stack, the target is a
        // proven-valid JUMPDEST slot.
        sum.add(t);
        tail = t.handler == Handler::Jump ? kSpanTailDynJump
                                          : kSpanTailDynJumpI;
        tail_slots = 1;
      }
    }
    if (slots + tail_slots < kMinElideSpanSlots) return kNoJumpTarget;
    if (sum.require > 0xFFFF || sum.peak > 0xFFFF) return kNoJumpTarget;
    ElideSpan span;
    span.first = start;
    span.count = slots;
    span.ops = sum.ops;
    span.static_gas = sum.static_gas;
    span.cycles = sum.cycles;
    span.stack_require = static_cast<std::uint16_t>(sum.require);
    span.stack_peak = static_cast<std::uint16_t>(sum.peak);
    span.tail = tail;
    program.spans.push_back(span);
    program.analysis.span_slots += slots + tail_slots;
    return static_cast<std::uint32_t>(program.spans.size() - 1);
  };

  // The entry block's span is checked before the first dispatch; when the
  // program *starts* with a JUMPDEST its handler runs the span instead, so
  // the JUMPDEST's own prologue accounting is never skipped.
  if (n != 0 && program.insts[0].handler != Handler::JumpDest) {
    program.entry_span = build(0);
  }
  // Fallback-continuation slots are never JUMPDEST, so a linear scan visits
  // every leader exactly once. The span index rides in the JUMPDEST's
  // otherwise-unused `target` field. Dead leaders (kJumpDestDeadFlag set by
  // analyze_for_translation) anchor no span: they are never executed, so a
  // span there would only inflate coverage counters.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (program.insts[i].handler == Handler::JumpDest) {
      program.insts[i].target =
          (program.insts[i].aux2 & kJumpDestDeadFlag) != 0 ? kNoJumpTarget
                                                           : build(i + 1);
    }
  }
  program.spans.shrink_to_fit();
}

void analyze_for_translation(DecodedProgram& program) {
  program.analysis = {};
  const auto n = static_cast<std::uint32_t>(program.insts.size());
  if (n == 0) {
    attach_elide_spans(program);
    return;
  }
  // Idempotence: clear any earlier resolution state before re-deriving it.
  for (std::uint32_t i = 0; i < n;) {
    DecodedInst& inst = program.insts[i];
    if (inst.handler == Handler::Jump || inst.handler == Handler::JumpI) {
      inst.target = kNoJumpTarget;
    } else if (inst.handler == Handler::JumpDest) {
      inst.aux2 &= static_cast<std::uint8_t>(~kJumpDestDeadFlag);
    }
    i += is_fused_head(inst.handler) ? 2 : 1;
  }

  Cfg cfg = build_cfg(program);
  const Dataflow dfl = run_constant_dataflow(program, cfg);
  stamp_resolutions(cfg, dfl);
  // Resolved destinations ride in the jump's own `target` slot, consumed
  // only by the span fast path — checked dispatch still resolves from the
  // live stack, keeping a pure-runtime reference the fuzzer diffs against.
  for (std::uint32_t idx = 0; idx < cfg.blocks.size(); ++idx) {
    if (dfl.jumps[idx].kind == JumpKind::Resolved) {
      const BasicBlock& b = cfg.blocks[idx];
      program.insts[b.first + b.count - 1].target =
          dfl.jumps[idx].target_inst;
    }
  }

  frozen_reach(cfg.blocks, program.insts.data());
  for (const BasicBlock& b : cfg.blocks) {
    if (b.reachable) {
      if (b.dynamic_exit) {
        if (b.resolved) {
          ++program.analysis.resolved_jumps;
        } else {
          ++program.analysis.unresolved_jumps;
        }
      }
    } else {
      ++program.analysis.dead_blocks;
      program.analysis.dead_slots += b.count;
      if (program.insts[b.first].handler == Handler::JumpDest) {
        program.insts[b.first].aux2 |= kJumpDestDeadFlag;
      }
    }
  }

  attach_elide_spans(program);
}

AnalysisReport analyze(const DecodedProgram& program,
                       const AnalysisOptions& options) {
  AnalysisReport report;
  const auto n = static_cast<std::uint32_t>(program.insts.size());
  if (n == 0) return report;
  const DecodedInst* const insts = program.insts.data();

  Cfg cfg = build_cfg(program);
  const Dataflow dfl = run_constant_dataflow(program, cfg);
  stamp_resolutions(cfg, dfl);
  const std::vector<std::uint32_t> block_of = std::move(cfg.block_of);
  report.blocks = std::move(cfg.blocks);
  auto& blocks = report.blocks;

  // --- reachability over the resolved CFG --------------------------------
  const bool sink_reachable = frozen_reach(blocks, insts);
  std::uint32_t sink_pc = 0;
  for (const BasicBlock& b : blocks) {
    if (b.reachable && b.dynamic_exit && !b.resolved) {
      sink_pc = insts[b.first + b.count - 1].pc;
      break;
    }
  }
  for (const BasicBlock& b : blocks) {
    if (b.reachable) {
      if (b.dynamic_exit) {
        if (b.resolved) {
          ++report.resolved_jumps;
        } else {
          ++report.unresolved_jumps;
        }
      }
    } else {
      ++report.dead_blocks;
      report.dead_slots += b.count;
    }
  }

  // --- entry-height dataflow --------------------------------------------
  // Heights propagate along the resolved CFG's edges — static jumps,
  // fallthroughs, and dataflow-resolved dynamic jumps. A block that is also
  // an unresolved-sink target keeps whatever those edges prove (the lint
  // reports are warnings about *provable* facts, not a soundness bound for
  // the elided path — that one re-checks at run time; the WCET stack claim
  // separately requires no reachable sink). Heights move monotonically
  // unknown -> value -> conflict, so the loop terminates.
  std::vector<std::uint8_t> conflict_reported(blocks.size(), 0);
  std::vector<std::uint32_t> work;
  blocks[0].entry_height = 0;
  work.push_back(0);
  while (!work.empty()) {
    const std::uint32_t idx = work.back();
    work.pop_back();
    BasicBlock& b = blocks[idx];
    if (!b.entry_height_known()) continue;
    const std::int32_t out = b.entry_height + b.stack_delta;
    frozen_successors(blocks, idx, [&](std::uint32_t succ) {
      BasicBlock& t = blocks[succ];
      if (t.entry_height == out ||
          t.entry_height == BasicBlock::kConflictHeight) {
        return;
      }
      if (t.entry_height == BasicBlock::kUnknownHeight) {
        t.entry_height = out;
      } else {
        t.entry_height = BasicBlock::kConflictHeight;
        if (!conflict_reported[succ]) {
          conflict_reported[succ] = 1;
          Diagnostic d;
          d.kind = Diagnostic::Kind::StackMergeConflict;
          d.severity = Severity::Warning;
          d.pc = t.pc;
          d.block = succ;
          d.message = "incoming edges disagree on the entry stack height";
          report.diagnostics.push_back(std::move(d));
        }
      }
      work.push_back(succ);
    });
  }

  // --- diagnostics -------------------------------------------------------
  const auto emit = [&](Diagnostic::Kind kind, Severity severity,
                        std::uint32_t pc, std::uint32_t block,
                        std::string message) {
    report.diagnostics.push_back(
        Diagnostic{kind, severity, pc, block, std::move(message)});
  };
  const auto emit_bad_jump = [&](std::uint32_t idx, const DecodedInst& jump,
                                 bool conditional, const U256& imm) {
    const std::uint64_t dest = imm.fits_u64() ? imm.as_u64() : ~0ULL;
    const bool into_pushdata =
        dest < options.code.size() &&
        options.code[dest] == static_cast<std::uint8_t>(Opcode::JUMPDEST);
    char buf[112];
    std::snprintf(buf, sizeof buf, "%s at pc %u targets %s0x%llx%s",
                  conditional ? "JUMPI" : "JUMP", jump.pc,
                  into_pushdata ? "a JUMPDEST byte inside pushdata at "
                                : "invalid destination ",
                  static_cast<unsigned long long>(imm.fits_u64() ? dest : 0),
                  imm.fits_u64() ? "" : " (oversized)");
    emit(into_pushdata ? Diagnostic::Kind::JumpIntoPushdata
                       : Diagnostic::Kind::BadJumpTarget,
         conditional ? Severity::Warning : Severity::Error, jump.pc, idx,
         buf);
  };
  for (std::uint32_t idx = 0; idx < blocks.size(); ++idx) {
    const BasicBlock& b = blocks[idx];
    if (!b.reachable) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "dead code: no path reaches block %u (pc %u..%u)", idx,
                    b.pc, b.pc_end);
      emit(Diagnostic::Kind::UnreachableBlock, Severity::Warning, b.pc, idx,
           buf);
      continue;  // facts below are about code that can execute
    }
    const DecodedInst& last = insts[b.first + b.count - 1];
    if (b.exit == BlockExit::Trap && last.handler != Handler::Invalid) {
      const bool undefined = last.handler == Handler::Undefined;
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s opcode at pc %u",
                    undefined ? "undefined" : "profile-forbidden", last.pc);
      std::string msg = buf;
      if (last.pc < options.code.size()) {
        char byte_buf[16];
        std::snprintf(byte_buf, sizeof byte_buf, " (byte 0x%02x)",
                      options.code[last.pc]);
        msg += byte_buf;
      }
      emit(undefined ? Diagnostic::Kind::InvalidOpcode
                     : Diagnostic::Kind::ForbiddenOpcode,
           Severity::Error, last.pc, idx, std::move(msg));
    }
    if ((b.exit == BlockExit::Jump || b.exit == BlockExit::Branch) &&
        !b.dynamic_exit && b.target == BasicBlock::kNoBlock) {
      // Fused PUSH+JUMP/JUMPI whose immediate is not a valid JUMPDEST:
      // the jump faults when executed (JUMPI: when taken).
      const DecodedInst& head = insts[b.first + b.count - 2];
      emit_bad_jump(idx, head, b.exit == BlockExit::Branch, head.imm);
    }
    if (b.dynamic_exit && b.resolved && b.target == BasicBlock::kNoBlock) {
      // Plain JUMP/JUMPI whose operand the dataflow proved is a constant
      // naming no valid JUMPDEST: same fault, discovered interprocedurally.
      emit_bad_jump(idx, last, b.exit == BlockExit::Branch,
                    dfl.jumps[idx].dest);
    }
    if (b.entry_height_known()) {
      if (b.entry_height < b.stack_require) {
        char buf[112];
        std::snprintf(buf, sizeof buf,
                      "block %u underflows: entry height %d < required %d",
                      idx, b.entry_height, b.stack_require);
        emit(Diagnostic::Kind::ProvenUnderflow, Severity::Error, b.pc, idx,
             buf);
      } else if (options.stack_limit != 0 &&
                 static_cast<std::size_t>(b.entry_height + b.stack_peak) >
                     options.stack_limit) {
        char buf[112];
        std::snprintf(buf, sizeof buf,
                      "block %u overflows: entry height %d + peak %d > "
                      "limit %zu",
                      idx, b.entry_height, b.stack_peak,
                      options.stack_limit);
        emit(Diagnostic::Kind::ProvenOverflow, Severity::Error, b.pc, idx,
             buf);
      }
    }
  }
  // Truncated PUSH immediates (implicit zero-fill past the end of code) —
  // usually a sign of fallthrough into what was meant to be data.
  for (std::uint32_t i = 0; i < n;) {
    const DecodedInst& inst = insts[i];
    if (is_push_family(inst.handler) &&
        static_cast<std::uint64_t>(inst.pc) + 1 + inst.aux >
            program.code_size) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "PUSH%u at pc %u runs past the end of code "
                    "(zero-filled)",
                    inst.aux, inst.pc);
      emit(Diagnostic::Kind::TruncatedPush, Severity::Warning, inst.pc,
           block_of[i], buf);
    }
    i += is_fused_head(inst.handler) ? 2 : 1;
  }

  // --- loops + WCET ------------------------------------------------------
  compute_structure(report, program, dfl, sink_reachable, sink_pc);

  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.pc != b.pc) return a.pc < b.pc;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return report;
}

}  // namespace tinyevm::evm
