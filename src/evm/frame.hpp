// Interpreter internals shared by the built-in execution engines: the
// 256-entry dispatch table and the per-message Frame whose two loop bodies
// (engine_raw.cpp / engine_decoded.cpp) implement the raw threaded and
// pre-decoded strategies. This header is private to src/evm — everything
// public crosses engine.hpp instead.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>

#include "evm/decoded.hpp"
#include "evm/engine.hpp"
#include "evm/state.hpp"
#include "evm/vm.hpp"
#include "u256/u256.hpp"

// Token-threaded dispatch (GCC/Clang): one 256-entry table maps each code
// byte to a handler label plus its folded static gas / cycle model, and
// `goto *table[...]` jumps straight to the handler. Other compilers fall
// back to a single dense switch over the same table, which they compile to
// one jump table — still strictly flatter than the legacy two-level switch.
#if defined(__GNUC__) || defined(__clang__)
#define TINYEVM_COMPUTED_GOTO 1
#else
#define TINYEVM_COMPUTED_GOTO 0
#endif

namespace tinyevm::evm {

// The Handler instruction set and the TINYEVM_HANDLER_LIST X-macro live in
// decoded.hpp, shared with the bytecode translator.

/// One table slot: handler id, family index (PUSH width / DUP-SWAP depth /
/// LOG topic count), and the per-opcode static gas and MCU-cycle model
/// folded in so the hot loop does a single 8-byte load per opcode.
struct DispatchEntry {
  Handler handler = Handler::Undefined;
  std::uint8_t aux = 0;
  std::uint16_t gas = 0;
  std::uint32_t cycles = 0;
};
static_assert(sizeof(DispatchEntry) == 8);

struct DispatchTable {
  std::array<DispatchEntry, 256> entries{};
};

/// Builds the table for one execution profile (validity from classify(),
/// gas/cycle model from the opcode info table).
[[nodiscard]] DispatchTable build_dispatch_table(const EngineProfile& profile);

/// Low 160 bits of an EVM word as an address.
inline Address to_address(const U256& v) {
  Address addr{};
  const auto w = v.to_word();
  std::memcpy(addr.data(), w.data() + 12, 20);
  return addr;
}

/// Interpreter frame; created per message and torn down when the run ends.
/// With a decoded program the frame runs the pre-decoded loop (span-elided
/// when `elide` is set); otherwise it falls back to the raw threaded loop
/// (and only then pays the per-run JUMPDEST analysis pass).
class Frame {
 public:
  Frame(const EngineProfile& profile, const DispatchTable& table,
        const HostInterface& host, const EngineMessage& msg,
        const DecodedProgram* decoded, bool elide)
      : profile_(profile),
        table_(table),
        host_(host),
        msg_(msg),
        decoded_(decoded),
        elide_(elide),
        stack_(profile.stack_limit),
        memory_(profile.memory_limit),
        gas_(msg.gas) {
    if (decoded_ == nullptr) analysis_.emplace(msg.code);
  }

  EngineResult run();

 private:
  // -- helpers --------------------------------------------------------
  [[nodiscard]] bool charge(std::int64_t amount) {
    if (!profile_.metering) return true;
    gas_ -= amount;
    return gas_ >= 0;
  }

  /// Quadratic memory-expansion gas (Ethereum profile); hard cap check
  /// (TinyEVM profile) happens inside Memory::expand. Priced in 128-bit
  /// arithmetic: for offsets beyond ~2^37 the w*w term overflows 64 bits,
  /// and a wrapped cost would under-charge (or even *credit* gas) instead
  /// of running out — so compute exactly and out-of-gas on saturation.
  [[nodiscard]] bool charge_memory(std::uint64_t offset, std::uint64_t len) {
    using u128 = unsigned __int128;
    if (len == 0) return true;
    if (!profile_.metering) return true;
    const u128 end = static_cast<u128>(offset) + len;
    const u128 new_words = (end + 31) / 32;
    const u128 old_words = (memory_.size() + 31) / 32;
    if (new_words <= old_words) return true;
    const auto cost = [](u128 w) { return 3 * w + w * w / 512; };
    const u128 delta = cost(new_words) - cost(old_words);
    if (delta > static_cast<u128>(std::numeric_limits<std::int64_t>::max())) {
      return false;  // cost exceeds any possible gas budget
    }
    return charge(static_cast<std::int64_t>(delta));
  }

  /// Pops a memory (offset, length) pair, validating both fit in 64 bits.
  struct MemRange {
    std::uint64_t offset;
    std::uint64_t len;
  };
  std::optional<MemRange> pop_range() {
    const auto off = stack_.pop();
    const auto len = stack_.pop();
    if (!off || !len) {
      fail(Status::StackUnderflow);
      return std::nullopt;
    }
    if (!len->is_zero() && (!off->fits_u64() || !len->fits_u64())) {
      fail(profile_.metering ? Status::OutOfGas : Status::OutOfMemory);
      return std::nullopt;
    }
    return MemRange{off->fits_u64() ? off->as_u64() : 0, len->as_u64()};
  }

  /// Prepares a memory range: expansion gas + hard-cap growth.
  bool grow(std::uint64_t offset, std::uint64_t len) {
    if (!charge_memory(offset, len)) {
      fail(Status::OutOfGas);
      return false;
    }
    if (!memory_.expand(offset, len)) {
      fail(Status::OutOfMemory);
      return false;
    }
    return true;
  }

  void fail(Status status) {
    status_ = status;
    done_ = true;
  }

  bool push(const U256& v) {
    if (!stack_.push(v)) {
      fail(Status::StackOverflow);
      return false;
    }
    return true;
  }

  std::optional<U256> pop() {
    auto v = stack_.pop();
    if (!v) fail(Status::StackUnderflow);
    return v;
  }

  /// CALLDATALOAD: one 32-byte big-endian word at `offset`, zero-padded
  /// past the end of calldata. Shared by the raw loop, the checked decoded
  /// handler, and the check-elided span body.
  [[nodiscard]] U256 calldata_word(const U256& offset) const {
    std::array<std::uint8_t, 32> buf{};
    // Bound i by the bytes remaining past o: `o + i` would wrap for
    // offsets near 2^64 and alias the start of calldata.
    if (offset.fits_u64() && offset.as_u64() < msg_.data.size()) {
      const std::uint64_t o = offset.as_u64();
      const std::uint64_t avail = msg_.data.size() - o;
      for (unsigned i = 0; i < 32 && i < avail; ++i) {
        buf[i] = msg_.data[o + i];
      }
    }
    return U256::from_word(buf);
  }

  void run_threaded();  // engine_raw.cpp
  void run_decoded();   // engine_decoded.cpp
  void op_sensor();
  void op_sha3();
  void op_copy(std::span<const std::uint8_t> src, bool external_code);
  void op_log(unsigned topic_count);
  void op_create();
  void op_call(CallKind kind);
  void op_return(bool revert);
  void op_sstore();
  void op_exp();

  // -- state ----------------------------------------------------------
  const EngineProfile& profile_;
  const DispatchTable& table_;
  const HostInterface& host_;
  const EngineMessage& msg_;
  const DecodedProgram* decoded_;
  const bool elide_;  // use the translation's spans (ElidedEngine)
  std::optional<CodeAnalysis> analysis_;  // raw-loop runs only
  Stack stack_;
  Memory memory_;
  Bytes return_data_;  // last nested-call output (RETURNDATA*)
  Bytes output_;
  std::uint64_t pc_ = 0;
  std::int64_t gas_;
  std::uint64_t cycles_ = 0;
  std::uint64_t ops_ = 0;
  Status status_ = Status::Success;
  bool done_ = false;
};

}  // namespace tinyevm::evm
