#include "evm/engine.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "evm/decoded.hpp"
#include "evm/frame.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Success: return "success";
    case Status::Revert: return "revert";
    case Status::OutOfGas: return "out of gas";
    case Status::StackOverflow: return "stack overflow";
    case Status::StackUnderflow: return "stack underflow";
    case Status::OutOfMemory: return "out of memory";
    case Status::StorageExhausted: return "storage exhausted";
    case Status::InvalidJump: return "invalid jump";
    case Status::InvalidOpcode: return "invalid opcode";
    case Status::ForbiddenOpcode: return "forbidden opcode";
    case Status::SensorFailure: return "sensor failure";
    case Status::CallDepthExceeded: return "call depth exceeded";
    case Status::StaticViolation: return "static violation";
    case Status::WatchdogExpired: return "watchdog expired";
  }
  return "unknown";
}

EngineProfile EngineProfile::from_config(const VmConfig& config) {
  EngineProfile p;
  p.revision = config.profile == VmProfile::TinyEvm ? EngineRevision::TinyEvm
                                                    : EngineRevision::Ethereum;
  p.stack_limit = config.stack_limit;
  p.memory_limit = config.memory_limit;
  p.storage_limit = config.storage_limit;
  p.metering = config.metering;
  p.block_opcodes = config.block_opcodes;
  p.iot_opcodes = config.iot_opcodes;
  p.gas_introspection = config.gas_introspection;
  p.max_call_depth = config.max_call_depth;
  p.max_ops = config.max_ops;
  return p;
}

TranslationProfile EngineProfile::translation() const {
  return TranslationProfile{revision == EngineRevision::TinyEvm, iot_opcodes,
                            block_opcodes};
}

HostInterface HostInterface::wrap(Host& host) {
  HostInterface hi;
  hi.context = &host;
  hi.sload_fn = +[](void* ctx, const Address& addr, const U256& key) {
    return static_cast<Host*>(ctx)->sload(addr, key);
  };
  hi.sstore_fn = +[](void* ctx, const Address& addr, const U256& key,
                     const U256& value) {
    return static_cast<Host*>(ctx)->sstore(addr, key, value);
  };
  hi.balance_fn = +[](void* ctx, const Address& addr) {
    return static_cast<Host*>(ctx)->balance(addr);
  };
  hi.code_at_fn = +[](void* ctx, const Address& addr) {
    return static_cast<Host*>(ctx)->code_at(addr);
  };
  hi.block_info_fn = +[](void* ctx) {
    return static_cast<Host*>(ctx)->block_info();
  };
  hi.block_hash_fn = +[](void* ctx, std::uint64_t number) {
    return static_cast<Host*>(ctx)->block_hash(number);
  };
  hi.call_fn = +[](void* ctx, const CallRequest& req) {
    return static_cast<Host*>(ctx)->call(req);
  };
  hi.create_fn = +[](void* ctx, const CreateRequest& req) {
    return static_cast<Host*>(ctx)->create(req);
  };
  hi.emit_log_fn = +[](void* ctx, LogEntry entry) {
    static_cast<Host*>(ctx)->emit_log(std::move(entry));
  };
  hi.self_destruct_fn = +[](void* ctx, const Address& addr,
                            const Address& beneficiary) {
    static_cast<Host*>(ctx)->self_destruct(addr, beneficiary);
  };
  hi.sensor_access_fn = +[](void* ctx, const SensorRequest& req) {
    return static_cast<Host*>(ctx)->sensor_access(req);
  };
  return hi;
}

namespace {

/// Decodes from raw bytecode every run: slowest, zero translation state,
/// and the semantic reference every other engine is held to.
class RawThreadedEngine final : public ExecutionEngine {
 public:
  [[nodiscard]] std::string_view name() const override { return kRawEngine; }
  [[nodiscard]] std::string_view description() const override {
    return "token-threaded loop over raw bytecode (semantic reference)";
  }
  [[nodiscard]] bool uses_translation() const override { return false; }
  [[nodiscard]] EngineResult execute(const HostInterface& host,
                                     const EngineContext& ctx,
                                     const EngineMessage& msg) const override {
    Frame frame(*ctx.profile, *ctx.dispatch, host, msg, nullptr, false);
    return frame.run();
  }
};

/// Executes the cached pre-decoded stream with every per-instruction
/// stack/gas/watchdog check in place. Falls back to the raw loop when no
/// translation is available (empty or oversized code).
class PredecodedEngine final : public ExecutionEngine {
 public:
  [[nodiscard]] std::string_view name() const override {
    return kPredecodedEngine;
  }
  [[nodiscard]] std::string_view description() const override {
    return "pre-decoded stream with checked dispatch";
  }
  [[nodiscard]] bool uses_translation() const override { return true; }
  [[nodiscard]] EngineResult execute(const HostInterface& host,
                                     const EngineContext& ctx,
                                     const EngineMessage& msg) const override {
    Frame frame(*ctx.profile, *ctx.dispatch, host, msg, ctx.program, false);
    return frame.run();
  }
};

/// The pre-decoded stream plus the analyzer's per-block ElideSpan fast
/// path: one entry test per basic block replaces the per-instruction
/// checks wherever the translate-time analysis proved them redundant.
class ElidedEngine final : public ExecutionEngine {
 public:
  [[nodiscard]] std::string_view name() const override { return kElidedEngine; }
  [[nodiscard]] std::string_view description() const override {
    return "pre-decoded stream with analysis-span check elision";
  }
  [[nodiscard]] bool uses_translation() const override { return true; }
  [[nodiscard]] EngineResult execute(const HostInterface& host,
                                     const EngineContext& ctx,
                                     const EngineMessage& msg) const override {
    Frame frame(*ctx.profile, *ctx.dispatch, host, msg, ctx.program, true);
    return frame.run();
  }
};

}  // namespace

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry registry;
  return registry;
}

EngineRegistry::EngineRegistry() {
  engines_.push_back(std::make_unique<RawThreadedEngine>());
  engines_.push_back(std::make_unique<PredecodedEngine>());
  engines_.push_back(std::make_unique<ElidedEngine>());
}

bool EngineRegistry::add(std::unique_ptr<ExecutionEngine> engine) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : engines_) {
    if (existing->name() == engine->name()) return false;
  }
  engines_.push_back(std::move(engine));
  return true;
}

const ExecutionEngine* EngineRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& engine : engines_) {
    if (engine->name() == name) return engine.get();
  }
  return nullptr;
}

const ExecutionEngine& EngineRegistry::require(std::string_view name) const {
  if (const ExecutionEngine* engine = find(name)) return *engine;
  std::ostringstream msg;
  msg << "unknown execution engine '" << name << "' (available:";
  for (const auto& known : names()) msg << ' ' << known;
  msg << ')';
  throw std::invalid_argument(msg.str());
}

std::vector<std::string> EngineRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& engine : engines_) out.emplace_back(engine->name());
  return out;
}

}  // namespace tinyevm::evm
