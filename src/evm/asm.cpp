#include "evm/asm.hpp"

#include <cstdio>

namespace tinyevm::evm {

Assembler& Assembler::push(const U256& v) {
  const unsigned bytes = v.byte_length() == 0 ? 1 : v.byte_length();
  code_.push_back(static_cast<std::uint8_t>(0x60 + bytes - 1));
  const auto word = v.to_word();
  code_.insert(code_.end(), word.end() - bytes, word.end());
  return *this;
}

Assembler& Assembler::push_word(const U256& v) {
  code_.push_back(0x7f);  // PUSH32
  const auto word = v.to_word();
  code_.insert(code_.end(), word.begin(), word.end());
  return *this;
}

std::uint64_t Assembler::label() {
  const std::uint64_t pc = code_.size();
  code_.push_back(static_cast<std::uint8_t>(Opcode::JUMPDEST));
  return pc;
}

Assembler& Assembler::push_label(std::uint64_t pc) {
  code_.push_back(0x61);  // PUSH2
  code_.push_back(static_cast<std::uint8_t>(pc >> 8));
  code_.push_back(static_cast<std::uint8_t>(pc & 0xFF));
  return *this;
}

Assembler& Assembler::sensor(std::uint32_t device_id, bool actuate,
                             const U256& param) {
  const std::uint64_t selector =
      (static_cast<std::uint64_t>(device_id) << 1) | (actuate ? 1 : 0);
  push(param);
  push(selector);
  return op(Opcode::SENSOR);
}

Bytes Assembler::deployer(const Bytes& runtime, const Bytes& prologue) {
  // Layout: [prologue] PUSH2 len PUSH2 offset PUSH1 0 CODECOPY
  //         PUSH2 len PUSH1 0 RETURN [runtime]
  // The copy offset depends on the constructor length, which depends on the
  // immediate widths — PUSH2 keeps them fixed so one pass suffices.
  Assembler ctor;
  ctor.raw(prologue);
  // PUSH2+PUSH2+PUSH1+CODECOPY + PUSH2+PUSH1+RETURN = 3+3+2+1 + 3+2+1 bytes.
  const std::uint64_t fixed = 15;
  const std::uint64_t offset = prologue.size() + fixed;
  const auto len = static_cast<std::uint16_t>(runtime.size());
  ctor.raw(0x61)
      .raw(static_cast<std::uint8_t>(len >> 8))
      .raw(static_cast<std::uint8_t>(len & 0xFF));  // PUSH2 len
  ctor.raw(0x61)
      .raw(static_cast<std::uint8_t>(offset >> 8))
      .raw(static_cast<std::uint8_t>(offset & 0xFF));  // PUSH2 offset
  ctor.raw(0x60).raw(0x00);                            // PUSH1 0
  ctor.op(Opcode::CODECOPY);
  ctor.raw(0x61)
      .raw(static_cast<std::uint8_t>(len >> 8))
      .raw(static_cast<std::uint8_t>(len & 0xFF));  // PUSH2 len
  ctor.raw(0x60).raw(0x00);                         // PUSH1 0
  ctor.op(Opcode::RETURN);
  Bytes out = ctor.take();
  out.insert(out.end(), runtime.begin(), runtime.end());
  return out;
}

std::vector<DisasmEntry> disassemble(std::span<const std::uint8_t> code) {
  std::vector<DisasmEntry> out;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    DisasmEntry entry;
    entry.pc = pc;
    entry.opcode = code[pc];
    const OpInfo& inf = info(code[pc]);
    if (inf.defined || code[pc] == 0x0c) {
      entry.name = std::string(inf.name);
      if (is_push(code[pc])) {
        const unsigned n = push_size(code[pc]);
        entry.name += std::to_string(n);
        for (unsigned i = 1; i <= n && pc + i < code.size(); ++i) {
          entry.immediate.push_back(code[pc + i]);
        }
        pc += n;
      } else if (is_dup(code[pc])) {
        entry.name += std::to_string(code[pc] - 0x7f);
      } else if (is_swap(code[pc])) {
        entry.name += std::to_string(code[pc] - 0x8f);
      }
      // LOGn names carry their index in the opcode table already.
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "UNDEFINED(0x%02x)", code[pc]);
      entry.name = buf;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace tinyevm::evm
