// Per-code-hash translation cache, lock-striped into shards.
//
// Off-chain rounds and the corpus benchmarks execute the same bytecode
// thousands of times; translating it once (decoded.hpp) only pays off if
// the translation is findable again. This cache keys decoded programs by
// `keccak256(code)` plus the profile flags that shaped the translation and
// holds them behind N independently-locked LRU shards selected by
// code-hash bits, so concurrent sessions looking up (or inserting)
// distinct code don't serialize on one mutex. It is shared across `Vm`
// instances — by default every Vm consults one process-wide cache, so a
// contract deployed through the chain host and re-run by a corpus worker
// or a channel-hub session reuses the same translation.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/hash.hpp"
#include "evm/decoded.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_annotations.hpp"

namespace tinyevm::evm {

class CodeCache {
 public:
  struct Config {
    /// Total decoded-program bytes retained; least-recently-used
    /// translations are evicted past this. The budget is split evenly
    /// across the shards, so a single translation larger than
    /// capacity_bytes / shards is handed to its one execution uncached —
    /// size the cap (or lower `shards`) accordingly when max_code_bytes
    /// is raised.
    std::size_t capacity_bytes = 8u << 20;
    /// Code larger than this is never translated — the raw threaded loop
    /// runs it. Bounds worst-case translate latency and cache churn from
    /// one-shot giants.
    std::size_t max_code_bytes = 64u << 10;
    /// Lock-striped shards, selected by code-hash bits (clamped to >= 1).
    /// More shards cut mutex contention when many workers touch distinct
    /// code; `shards = 1` restores the single-LRU behaviour exactly.
    std::size_t shards = 8;
  };

  /// Counter invariant: every non-empty get_or_translate call resolves as
  /// exactly one of hit / miss / oversized, so
  ///   hits + misses + oversized == lookups
  /// always holds (empty code returns before any accounting). The
  /// aggregate stats() sums the per-shard counters, so the invariant holds
  /// for the aggregate and for every shard_stats() row individually.
  struct Stats {
    std::uint64_t lookups = 0;     ///< non-empty get_or_translate calls
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< lookups that had to translate
    std::uint64_t evictions = 0;   ///< entries dropped by the byte cap
    std::uint64_t oversized = 0;   ///< lookups declined by max_code_bytes
    /// Concurrent first executions of the same code race to translate;
    /// each loser's finished translation is dropped in favour of the
    /// winner's cached entry. Purely wasted work. Cumulative: one racing
    /// episode adds at most racers-1, but evicted code can be re-raced,
    /// so the counter itself is unbounded over a run.
    std::uint64_t dup_translations = 0;
    /// Shard-mutex acquisitions that found the lock already held and had
    /// to wait — the contention signal the channel-hub bench reports.
    std::uint64_t lock_contentions = 0;
    std::size_t bytes = 0;         ///< resident decoded-program bytes
    std::size_t entries = 0;
    std::size_t shards = 0;        ///< stripe count (Config::shards clamped)
    /// Check-elision spans (decoded.hpp::ElideSpan) across the resident
    /// translations — how much of the cache the static analyzer proved
    /// safe for block-granular dispatch. Resident-state gauge like
    /// `bytes`/`entries`, not a cumulative counter.
    std::size_t elide_spans = 0;
    /// Translate-time dataflow results summed over the resident
    /// translations (DecodedProgram::AnalysisSummary): dynamic jumps the
    /// constant propagation turned into static edges vs. those left as
    /// every-JUMPDEST over-approximations, blocks/slots proven dead, and
    /// the stream slots elide spans cover. Resident-state gauges like
    /// `elide_spans`.
    struct Analysis {
      std::uint64_t resolved_jumps = 0;
      std::uint64_t unresolved_jumps = 0;
      std::uint64_t dead_blocks = 0;
      std::uint64_t dead_slots = 0;
      std::uint64_t span_slots = 0;
    } analysis;

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  CodeCache();
  explicit CodeCache(Config config);

  /// Returns the decoded program for `code`, translating (and caching) on
  /// a miss. Pass `code_hash` when the caller already knows
  /// keccak256(code) — the chain host caches it per account — to skip
  /// rehashing. Returns nullptr for empty or oversized code; the caller
  /// then runs the raw threaded loop.
  std::shared_ptr<const DecodedProgram> get_or_translate(
      std::span<const std::uint8_t> code, const TranslationProfile& profile,
      const Hash256* code_hash = nullptr);

  /// Aggregate over every shard.
  [[nodiscard]] Stats stats() const;
  /// One shard's counters (shard < shard_count()); `shards` is set to 1.
  [[nodiscard]] Stats shard_stats(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  void clear();
  [[nodiscard]] const Config& config() const { return config_; }

  /// The process-wide cache every Vm uses unless handed its own — this is
  /// what shares translations across Vm instances (chain hosts, corpus
  /// workers, channel endpoints and hubs all construct their own Vm).
  /// Constructed lazily with the configure_shared_default() config, or
  /// Config{} when none was installed.
  static const std::shared_ptr<CodeCache>& shared_default();

  /// Installs the Config the process-wide cache will be built with. Must
  /// run before anything touches shared_default() (constructing a Vm
  /// without an explicit cache counts): the first use wins, and a call
  /// after the cache exists returns false and changes nothing.
  static bool configure_shared_default(const Config& config);

 private:
  struct Key {
    Hash256 hash{};
    std::uint8_t profile = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const DecodedProgram> program;
    std::size_t bytes = 0;
  };
  /// One lock stripe: an independent LRU over its slice of the key space
  /// with its own byte budget and counters. Locked inline via
  /// `runtime::MutexLock lock(shard.mu, shard.lock_contentions)` — the
  /// contended-acquisition counting lives in the lock type now, and a
  /// scoped capability cannot be returned from a helper.
  struct Shard {
    mutable runtime::Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index
        GUARDED_BY(mu);
    std::size_t bytes GUARDED_BY(mu) = 0;
    std::uint64_t lookups GUARDED_BY(mu) = 0;
    std::uint64_t hits GUARDED_BY(mu) = 0;
    std::uint64_t misses GUARDED_BY(mu) = 0;
    std::uint64_t evictions GUARDED_BY(mu) = 0;
    std::uint64_t oversized GUARDED_BY(mu) = 0;
    std::uint64_t dup_translations GUARDED_BY(mu) = 0;
    /// Outside mu: bumped before blocking on it (mutable so const stats
    /// readers can count their own contended acquisitions too).
    mutable std::atomic<std::uint64_t> lock_contentions{0};
  };

  Shard& shard_for(const Key& key);
  void accumulate(const Shard& shard, Stats& s) const REQUIRES(shard.mu);

  Config config_;
  std::size_t shard_capacity_bytes_;
  std::vector<Shard> shards_;
  /// Scrape-time registration publishing stats() (plus per-shard
  /// lock_contentions) under a per-instance `cache` label. Declared last:
  /// the handle's destructor is the barrier that keeps a concurrent
  /// scrape from reading a cache mid-teardown.
  obs::CollectorHandle collector_;
};

}  // namespace tinyevm::evm
