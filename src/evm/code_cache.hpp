// Per-code-hash translation cache.
//
// Off-chain rounds and the corpus benchmarks execute the same bytecode
// thousands of times; translating it once (decoded.hpp) only pays off if
// the translation is findable again. This cache keys decoded programs by
// `keccak256(code)` plus the profile flags that shaped the translation,
// holds them behind a thread-safe LRU with a byte-size cap, and is shared
// across `Vm` instances — by default every Vm consults one process-wide
// cache, so a contract deployed through the chain host and re-run by a
// corpus worker reuses the same translation.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "crypto/hash.hpp"
#include "evm/decoded.hpp"

namespace tinyevm::evm {

class CodeCache {
 public:
  struct Config {
    /// Total decoded-program bytes retained; least-recently-used
    /// translations are evicted past this.
    std::size_t capacity_bytes = 8u << 20;
    /// Code larger than this is never translated — the raw threaded loop
    /// runs it. Bounds worst-case translate latency and cache churn from
    /// one-shot giants.
    std::size_t max_code_bytes = 64u << 10;
  };

  /// Counter invariant: every non-empty get_or_translate call resolves as
  /// exactly one of hit / miss / oversized, so
  ///   hits + misses + oversized == lookups
  /// always holds (empty code returns before any accounting).
  struct Stats {
    std::uint64_t lookups = 0;     ///< non-empty get_or_translate calls
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< lookups that had to translate
    std::uint64_t evictions = 0;   ///< entries dropped by the byte cap
    std::uint64_t oversized = 0;   ///< lookups declined by max_code_bytes
    /// Concurrent first executions of the same code race to translate;
    /// each loser's finished translation is dropped in favour of the
    /// winner's cached entry. Purely wasted work. Cumulative: one racing
    /// episode adds at most racers-1, but evicted code can be re-raced,
    /// so the counter itself is unbounded over a run.
    std::uint64_t dup_translations = 0;
    std::size_t bytes = 0;         ///< resident decoded-program bytes
    std::size_t entries = 0;

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  CodeCache();
  explicit CodeCache(Config config);

  /// Returns the decoded program for `code`, translating (and caching) on
  /// a miss. Pass `code_hash` when the caller already knows
  /// keccak256(code) — the chain host caches it per account — to skip
  /// rehashing. Returns nullptr for empty or oversized code; the caller
  /// then runs the raw threaded loop.
  std::shared_ptr<const DecodedProgram> get_or_translate(
      std::span<const std::uint8_t> code, const TranslationProfile& profile,
      const Hash256* code_hash = nullptr);

  [[nodiscard]] Stats stats() const;
  void clear();
  [[nodiscard]] const Config& config() const { return config_; }

  /// The process-wide cache every Vm uses unless handed its own — this is
  /// what shares translations across Vm instances (chain hosts, corpus
  /// workers, channel endpoints all construct their own Vm).
  static const std::shared_ptr<CodeCache>& shared_default();

 private:
  struct Key {
    Hash256 hash{};
    std::uint8_t profile = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const DecodedProgram> program;
    std::size_t bytes = 0;
  };

  Config config_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index_;
  std::size_t bytes_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t oversized_ = 0;
  std::uint64_t dup_translations_ = 0;
};

}  // namespace tinyevm::evm
