// The EVMC-style execution-engine boundary (ROADMAP "pluggable execution
// backend"). Everything an engine needs crosses this header: a revision
// enum plus a flat profile descriptor (EngineProfile), flat message/result
// structs (EngineMessage/EngineResult), and a host-callback function table
// (HostInterface) adapting the virtual Host — so an engine never touches a
// Host subclass, a VmConfig, or the cache directly. The three interpreter
// strategies that grew inside vm.cpp — raw token-threaded, checked
// pre-decoded, and check-elided — are separate engines behind this
// boundary, registered in the process-wide EngineRegistry and selectable
// per-call. A future engine (the template JIT the ROADMAP scopes) plugs in
// by registering here and is differential-tested for free: the N-way
// harness in tests/evm_dispatch_test.cpp enumerates the registry.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "evm/host.hpp"
#include "u256/u256.hpp"

namespace tinyevm::evm {

struct VmConfig;
struct DispatchTable;
struct DecodedProgram;
struct TranslationProfile;

enum class Status : std::uint8_t {
  Success,
  Revert,
  OutOfGas,
  StackOverflow,
  StackUnderflow,
  OutOfMemory,       ///< TinyEVM 8 KB memory cap exceeded
  StorageExhausted,  ///< TinyEVM 1 KB side-chain storage cap exceeded
  InvalidJump,
  InvalidOpcode,     ///< undefined byte, or INVALID (0xfe)
  ForbiddenOpcode,   ///< opcode not in the active profile
  SensorFailure,     ///< SENSOR opcode: no such device / read failed
  CallDepthExceeded,
  StaticViolation,   ///< state mutation inside STATICCALL
  WatchdogExpired,   ///< EngineProfile::max_ops exceeded (runaway code)
};

[[nodiscard]] std::string_view to_string(Status s);

/// Which instruction-set semantics the engine runs (paper §IV-B): the
/// Ethereum profile meters gas and exposes the blockchain opcodes; the
/// TinyEVM profile drops gas, caps resources, and adds SENSOR (0x0c).
enum class EngineRevision : std::uint8_t { Ethereum, TinyEvm };

/// The flat execution-semantics descriptor engines consume — the
/// EVMC-revision analogue of VmConfig, without the dispatch-strategy
/// plumbing (predecode / elide_checks / engine name) that selects an
/// engine rather than parameterizing one.
struct EngineProfile {
  EngineRevision revision = EngineRevision::TinyEvm;
  std::size_t stack_limit = 96;      ///< elements (96 * 32 B = 3 KB)
  std::size_t memory_limit = 8192;   ///< bytes; 0 = unbounded (gas-bounded)
  std::size_t storage_limit = 1024;  ///< TinyEVM side-chain budget (bytes)
  bool metering = false;             ///< charge gas, abort on exhaustion
  bool block_opcodes = false;        ///< BLOCKHASH..GASLIMIT available
  bool iot_opcodes = true;           ///< SENSOR (0x0c) available
  bool gas_introspection = false;    ///< GAS/GASPRICE/EXTCODE* available
  int max_call_depth = 8;            ///< nested frames an MCU can afford
  std::uint64_t max_ops = 50'000'000;  ///< watchdog; 0 = unlimited

  /// Projects the semantics fields out of a VmConfig.
  [[nodiscard]] static EngineProfile from_config(const VmConfig& config);
  /// The subset of flags that shape a bytecode translation — the
  /// CodeCache key component (decoded.hpp::TranslationProfile).
  [[nodiscard]] TranslationProfile translation() const;
};

/// Flat execution request. Spans alias the caller's buffers (EVMC-style:
/// the message does not own anything), so an EngineMessage is only valid
/// for the duration of the execute() call it is passed to.
/// One taken jump, as observed by a checked dispatch loop: the JUMP/JUMPI's
/// own pc and the destination actually followed. Collected only on request
/// (EngineMessage::jump_trace) so the fuzz soundness oracle can diff real
/// control flow against the analyzer's statically resolved edges.
struct JumpEdge {
  std::uint32_t from_pc = 0;
  std::uint32_t to_pc = 0;
};

struct EngineMessage {
  Address self{};
  Address caller{};
  Address origin{};
  U256 value;
  std::span<const std::uint8_t> data;
  std::span<const std::uint8_t> code;
  /// keccak256(code) when the caller already knows it; null otherwise.
  const Hash256* code_hash = nullptr;
  std::int64_t gas = 10'000'000;
  int depth = 0;
  bool is_static = false;
  /// When non-null, engines that resolve plain JUMP/JUMPI at run time
  /// append every taken dynamic jump of the top frame here (fused and
  /// span-swallowed jumps excluded: their targets were already proven at
  /// translate time). Test/fuzz instrumentation only — leave null on hot
  /// paths.
  std::vector<JumpEdge>* jump_trace = nullptr;
};

/// Per-run statistics consumed by the evaluation harness (Figures 3/4,
/// Table II).
struct ExecStats {
  std::size_t max_stack_pointer = 0;  ///< Fig 3c
  std::size_t peak_memory = 0;        ///< Fig 3a/3b (bytes)
  std::uint64_t ops_executed = 0;
  std::uint64_t mcu_cycles = 0;       ///< Fig 4 (deployment time model)
};

/// Flat execution result (vm.hpp aliases this as ExecResult).
struct EngineResult {
  Status status = Status::Success;
  Bytes output;
  std::int64_t gas_left = 0;
  ExecStats stats;

  [[nodiscard]] bool ok() const { return status == Status::Success; }
};

/// Host-callback table: the full Host vtable flattened into function
/// pointers over an opaque context, so engines depend on this POD-ish
/// table rather than on Host subclasses. The inline methods mirror Host's
/// names and signatures exactly, keeping engine code host-agnostic without
/// rewriting every call site.
struct HostInterface {
  void* context = nullptr;
  U256 (*sload_fn)(void*, const Address&, const U256&) = nullptr;
  bool (*sstore_fn)(void*, const Address&, const U256&, const U256&) =
      nullptr;
  U256 (*balance_fn)(void*, const Address&) = nullptr;
  Bytes (*code_at_fn)(void*, const Address&) = nullptr;
  BlockInfo (*block_info_fn)(void*) = nullptr;
  Hash256 (*block_hash_fn)(void*, std::uint64_t) = nullptr;
  CallResult (*call_fn)(void*, const CallRequest&) = nullptr;
  CreateResult (*create_fn)(void*, const CreateRequest&) = nullptr;
  void (*emit_log_fn)(void*, LogEntry) = nullptr;
  void (*self_destruct_fn)(void*, const Address&, const Address&) = nullptr;
  std::optional<U256> (*sensor_access_fn)(void*, const SensorRequest&) =
      nullptr;

  U256 sload(const Address& addr, const U256& key) const {
    return sload_fn(context, addr, key);
  }
  bool sstore(const Address& addr, const U256& key, const U256& value) const {
    return sstore_fn(context, addr, key, value);
  }
  U256 balance(const Address& addr) const { return balance_fn(context, addr); }
  Bytes code_at(const Address& addr) const { return code_at_fn(context, addr); }
  BlockInfo block_info() const { return block_info_fn(context); }
  Hash256 block_hash(std::uint64_t number) const {
    return block_hash_fn(context, number);
  }
  CallResult call(const CallRequest& req) const { return call_fn(context, req); }
  CreateResult create(const CreateRequest& req) const {
    return create_fn(context, req);
  }
  void emit_log(LogEntry entry) const {
    emit_log_fn(context, std::move(entry));
  }
  void self_destruct(const Address& addr, const Address& beneficiary) const {
    self_destruct_fn(context, addr, beneficiary);
  }
  std::optional<U256> sensor_access(const SensorRequest& req) const {
    return sensor_access_fn(context, req);
  }

  /// Adapts a virtual Host. The table aliases `host`; it must outlive
  /// every call through the returned interface.
  [[nodiscard]] static HostInterface wrap(Host& host);
};

/// Everything Vm::execute resolves before dispatching to an engine. All
/// pointers alias Vm-owned (or cache-owned) state that outlives the call.
struct EngineContext {
  const EngineProfile* profile = nullptr;
  const DispatchTable* dispatch = nullptr;
  /// The cached translation, or null (engine doesn't use translations,
  /// empty code, or code past the cache's size cap — translation-using
  /// engines then fall back to the raw loop, the semantic reference).
  const DecodedProgram* program = nullptr;
};

/// One execution strategy. Engines are stateless and shared: execute()
/// must be safe to call concurrently from any number of threads.
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// True when the engine executes pre-decoded instruction streams and
  /// Vm::execute should consult the translation cache for it.
  [[nodiscard]] virtual bool uses_translation() const = 0;
  [[nodiscard]] virtual EngineResult execute(const HostInterface& host,
                                             const EngineContext& ctx,
                                             const EngineMessage& msg)
      const = 0;
};

/// The built-in engine names.
inline constexpr std::string_view kRawEngine = "raw";
inline constexpr std::string_view kPredecodedEngine = "predecoded";
inline constexpr std::string_view kElidedEngine = "elided";

/// Process-wide engine catalogue. The three built-ins register at
/// construction; additional engines (a JIT tier) can be added at startup.
/// Thread-safe; returned engine pointers stay valid for the process
/// lifetime (engines are never removed).
class EngineRegistry {
 public:
  static EngineRegistry& instance();

  /// Registers an engine. False (and no registration) when the name is
  /// already taken.
  bool add(std::unique_ptr<ExecutionEngine> engine);
  /// Nullptr when no engine has that name.
  [[nodiscard]] const ExecutionEngine* find(std::string_view name) const;
  /// Like find(), but throws std::invalid_argument naming the available
  /// engines — the error surface for VmConfig::engine / Message::engine.
  [[nodiscard]] const ExecutionEngine& require(std::string_view name) const;
  /// Registration order; the built-ins come first, raw (the semantic
  /// reference) leading.
  [[nodiscard]] std::vector<std::string> names() const;

  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

 private:
  EngineRegistry();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ExecutionEngine>> engines_;
};

}  // namespace tinyevm::evm
