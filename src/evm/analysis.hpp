// Translate-time static analysis over pre-decoded instruction streams.
//
// Partitions a DecodedProgram into basic blocks (leaders at the entry
// point, at every JUMPDEST, and after every jump/terminator), then
// abstract-interprets each block's stack algebra to compute
//   (a) the exact net stack effect, the minimum entry height the block
//       needs, and the transient high-water it can reach,
//   (b) the summed static gas and modeled MCU cycles,
//   (c) reachability and entry stack heights along statically-known edges
//       (dead code, merge-point height conflicts, proven underflow and
//       overflow).
//
// Two consumers share the per-instruction algebra:
//   * attach_elide_spans() summarizes the provably failure-free run after
//     each block leader into DecodedProgram::spans; the interpreter's
//     check-elided fast path (vm.cpp) replaces that run's per-instruction
//     stack/gas/watchdog branches with one span-entry test.
//   * analyze() builds the whole-block facts and diagnostics behind
//     tools/tinyevm_lint.cpp and tests/evm_analysis_test.cpp.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "evm/decoded.hpp"

namespace tinyevm::evm {

/// Static stack behaviour of one decoded instruction (fused pairs count as
/// the whole pair): `require` is the minimum entry height that avoids
/// underflow, `delta` the net height change, `peak` the maximum transient
/// growth above the entry height while the instruction runs. Fusion
/// preserves all three (the fallback continuation re-creates the same
/// transient), so one table serves fused and unfused execution.
struct StackEffect {
  std::int32_t require = 0;
  std::int32_t delta = 0;
  std::int32_t peak = 0;
};

[[nodiscard]] StackEffect stack_effect(const DecodedInst& inst);

/// True for handlers whose bodies are pure register/stack transforms with
/// static-only gas: no host calls, no memory growth, no control flow, no
/// live-gas reads (GAS is excluded — it must observe per-instruction
/// charging). Exactly the set the check-elided fast path may run without
/// per-instruction stack/gas/watchdog branches.
[[nodiscard]] bool is_elidable(Handler h);

/// How a basic block hands off control.
enum class BlockExit : std::uint8_t {
  FallThrough,  ///< next leader is a JUMPDEST; execution runs into it
  Jump,         ///< unconditional JUMP / fused PUSH+JUMP
  Branch,       ///< JUMPI / fused PUSH+JUMPI: target plus fallthrough
  Terminate,    ///< STOP / RETURN / REVERT / SELFDESTRUCT
  Trap,         ///< INVALID, undefined byte, or profile-forbidden opcode
  CodeEnd,      ///< runs off the end of code (implicit STOP)
};

[[nodiscard]] std::string_view to_string(BlockExit exit);

struct BasicBlock {
  static constexpr std::uint32_t kNoBlock = 0xFFFF'FFFFu;
  /// Entry-height lattice: unknown (never reached along a static edge),
  /// a concrete height, or conflicting heights at a merge point.
  static constexpr std::int32_t kUnknownHeight =
      std::numeric_limits<std::int32_t>::min();
  static constexpr std::int32_t kConflictHeight = kUnknownHeight + 1;

  std::uint32_t first = 0;   ///< index of the leader instruction
  std::uint32_t count = 0;   ///< stream slots covered (fused pairs: 2)
  std::uint32_t pc = 0;      ///< byte offset of the leader
  std::uint32_t pc_end = 0;  ///< one past the last byte of the block
  BlockExit exit = BlockExit::CodeEnd;
  /// Statically-resolved successor for Jump/Branch exits (fused
  /// PUSH+JUMP/JUMPI with a translate-time target); kNoBlock when the exit
  /// is dynamic or the target is provably invalid.
  std::uint32_t target = kNoBlock;
  /// Exit jump whose destination is only known at run time (plain JUMP /
  /// JUMPI fed from the stack). Conservatively reaches every JUMPDEST.
  bool dynamic_exit = false;

  // Proven whole-block facts (see StackEffect for the algebra).
  std::int32_t stack_require = 0;
  std::int32_t stack_delta = 0;
  std::int32_t stack_peak = 0;
  std::uint64_t static_gas = 0;
  std::uint64_t cycles = 0;
  std::uint32_t ops = 0;  ///< instructions executed (fused pairs: 2)

  bool reachable = false;
  std::int32_t entry_height = kUnknownHeight;

  [[nodiscard]] bool entry_height_known() const {
    return entry_height != kUnknownHeight && entry_height != kConflictHeight;
  }
};

enum class Severity : std::uint8_t { Warning, Error };

struct Diagnostic {
  enum class Kind : std::uint8_t {
    UnreachableBlock,    ///< dead code: no path from the entry reaches it
    TruncatedPush,       ///< PUSH immediate runs past the end of code
    InvalidOpcode,       ///< reachable undefined byte
    ForbiddenOpcode,     ///< reachable opcode outside the active profile
    BadJumpTarget,       ///< static jump to a non-JUMPDEST destination
    JumpIntoPushdata,    ///< static jump to a 0x5b byte inside pushdata
    StackMergeConflict,  ///< static edges disagree on the entry height
    ProvenUnderflow,     ///< entry height < the block's stack_require
    ProvenOverflow,      ///< entry height + stack_peak > the stack limit
  };

  Kind kind = Kind::UnreachableBlock;
  Severity severity = Severity::Warning;
  std::uint32_t pc = 0;     ///< byte offset the finding anchors to
  std::uint32_t block = 0;  ///< index into AnalysisReport::blocks
  std::string message;
};

[[nodiscard]] std::string_view to_string(Diagnostic::Kind kind);

struct AnalysisReport {
  std::vector<BasicBlock> blocks;
  std::vector<Diagnostic> diagnostics;  // sorted by pc

  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
};

struct AnalysisOptions {
  /// Stack element cap used for the overflow proof; 0 skips it.
  std::size_t stack_limit = 0;
  /// The raw bytecode the program was translated from, when the caller
  /// still has it: refines invalid-jump-target diagnostics into
  /// "jump into pushdata" where the destination byte is 0x5b.
  std::span<const std::uint8_t> code = {};
};

/// Builds the basic-block CFG, runs reachability + entry-height dataflow,
/// and collects diagnostics. Pure function of the translation: safe on any
/// input the translator accepts, including fuzzer garbage.
[[nodiscard]] AnalysisReport analyze(const DecodedProgram& program,
                                     const AnalysisOptions& options = {});

/// Minimum stream slots (body plus a swallowed tail jump's two) for a
/// span to pay for its entry test.
inline constexpr std::uint32_t kMinElideSpanSlots = 2;

/// Computes DecodedProgram::spans / entry_span: for each block leader, the
/// maximal run of elidable instructions after it — plus the block's
/// terminating fused jump when its target resolved statically — folded
/// into one stack/gas/watchdog summary. Called by translate(); idempotent.
void attach_elide_spans(DecodedProgram& program);

}  // namespace tinyevm::evm
