// Translate-time static analysis over pre-decoded instruction streams.
//
// Partitions a DecodedProgram into basic blocks (leaders at the entry
// point, at every JUMPDEST, and after every jump/terminator), then runs a
// whole-contract dataflow pipeline:
//   (a) per-block stack algebra: the exact net stack effect, the minimum
//       entry height that avoids underflow, and the transient high-water,
//   (b) a constant-propagation pass over an abstract stack (Known(U256) /
//       Unknown values threaded through PUSH/DUP/SWAP, the fused
//       superinstructions, and foldable arithmetic) that statically
//       resolves dynamic JUMP/JUMPI whose operand is a propagated
//       constant — replacing the every-JUMPDEST over-approximation with a
//       single CFG edge,
//   (c) reachability and entry stack heights along the resolved CFG (dead
//       code, merge-point height conflicts, proven underflow/overflow),
//   (d) dominator-based natural-loop detection with an affine
//       trip-count prover, and per-entry-point WCET certification of
//       worst-case gas, MCU cycles, executed ops, and stack peak.
//
// Three consumers share the machinery:
//   * analyze_for_translation() runs (b)+(c) inside translate(): it writes
//     resolved targets into the decoded stream, dead-marks unreachable
//     JUMPDEST leaders, and fills DecodedProgram::analysis before
//     attach_elide_spans() widens spans across the resolved edges.
//   * attach_elide_spans() summarizes the provably failure-free run after
//     each live block leader into DecodedProgram::spans; the check-elided
//     engine replaces that run's per-instruction stack/gas/watchdog
//     branches with one span-entry test.
//   * analyze() builds the full report — blocks, diagnostics, loops, WCET
//     certificate — behind tools/tinyevm_lint.cpp, the fuzz soundness
//     oracle, and tests/evm_analysis_test.cpp.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "evm/decoded.hpp"

namespace tinyevm::evm {

/// Static stack behaviour of one decoded instruction (fused pairs count as
/// the whole pair): `require` is the minimum entry height that avoids
/// underflow, `delta` the net height change, `peak` the maximum transient
/// growth above the entry height while the instruction runs. Fusion
/// preserves all three (the fallback continuation re-creates the same
/// transient), so one table serves fused and unfused execution.
struct StackEffect {
  std::int32_t require = 0;
  std::int32_t delta = 0;
  std::int32_t peak = 0;
};

[[nodiscard]] StackEffect stack_effect(const DecodedInst& inst);

/// True for handlers whose bodies are pure register/stack transforms with
/// static-only gas: no host calls, no memory growth, no control flow, no
/// live-gas reads (GAS is excluded — it must observe per-instruction
/// charging). Exactly the set the check-elided fast path may run without
/// per-instruction stack/gas/watchdog branches.
[[nodiscard]] bool is_elidable(Handler h);

/// How a basic block hands off control.
enum class BlockExit : std::uint8_t {
  FallThrough,  ///< next leader is a JUMPDEST; execution runs into it
  Jump,         ///< unconditional JUMP / fused PUSH+JUMP
  Branch,       ///< JUMPI / fused PUSH+JUMPI: target plus fallthrough
  Terminate,    ///< STOP / RETURN / REVERT / SELFDESTRUCT
  Trap,         ///< INVALID, undefined byte, or profile-forbidden opcode
  CodeEnd,      ///< runs off the end of code (implicit STOP)
};

[[nodiscard]] std::string_view to_string(BlockExit exit);

struct BasicBlock {
  static constexpr std::uint32_t kNoBlock = 0xFFFF'FFFFu;
  static constexpr std::uint32_t kNoLoop = 0xFFFF'FFFFu;
  /// Entry-height lattice: unknown (never reached along a static edge),
  /// a concrete height, or conflicting heights at a merge point.
  static constexpr std::int32_t kUnknownHeight =
      std::numeric_limits<std::int32_t>::min();
  static constexpr std::int32_t kConflictHeight = kUnknownHeight + 1;

  std::uint32_t first = 0;   ///< index of the leader instruction
  std::uint32_t count = 0;   ///< stream slots covered (fused pairs: 2)
  std::uint32_t pc = 0;      ///< byte offset of the leader
  std::uint32_t pc_end = 0;  ///< one past the last byte of the block
  BlockExit exit = BlockExit::CodeEnd;
  /// Statically-resolved successor for Jump/Branch exits: a fused
  /// PUSH+JUMP/JUMPI translate-time target, or a dynamic jump the constant
  /// dataflow resolved (`resolved` set). kNoBlock when the exit stays
  /// dynamic or the target is provably invalid.
  std::uint32_t target = kNoBlock;
  /// Exit jump whose destination comes off the stack (plain JUMP/JUMPI).
  /// When the dataflow proves the operand constant, `resolved` is set and
  /// `target` holds the one successor; otherwise the exit conservatively
  /// reaches every JUMPDEST (or nothing, if the operand is a proven-bad
  /// constant).
  bool dynamic_exit = false;
  bool resolved = false;

  // Proven whole-block facts (see StackEffect for the algebra).
  std::int32_t stack_require = 0;
  std::int32_t stack_delta = 0;
  std::int32_t stack_peak = 0;
  std::uint64_t static_gas = 0;
  std::uint64_t cycles = 0;
  std::uint32_t ops = 0;  ///< instructions executed (fused pairs: 2)

  bool reachable = false;
  std::int32_t entry_height = kUnknownHeight;
  /// Innermost natural loop containing this block (index into
  /// AnalysisReport::loops), or kNoLoop.
  std::uint32_t loop = kNoLoop;

  [[nodiscard]] bool entry_height_known() const {
    return entry_height != kUnknownHeight && entry_height != kConflictHeight;
  }
};

/// A natural loop on the resolved CFG: a dominator back edge latch→header
/// plus every block that can reach the latch without passing the header.
/// Loops sharing a header are merged (the header then has several latches
/// and `latch` is kNoBlock).
struct LoopInfo {
  std::uint32_t header = 0;
  std::uint32_t latch = BasicBlock::kNoBlock;  ///< single back-edge source
  std::vector<std::uint32_t> blocks;           ///< member ids, ascending
  std::uint32_t parent = BasicBlock::kNoLoop;  ///< enclosing loop
  /// Proven upper bound on header entries per frame execution, when the
  /// affine trip-count prover certified one.
  bool bounded = false;
  std::uint64_t trip_bound = 0;
  std::string note;  ///< why unbounded, or how the bound was proven
};

/// One dimension of the worst-case execution claim. `bound` is a sound
/// upper limit on what ExecStats can observe for any execution of the
/// frame (any status — a faulting run's consumption is a prefix), valid
/// only when `certified`; otherwise `reason` says what blocked the proof.
struct WcetBound {
  bool certified = false;
  std::uint64_t bound = 0;
  std::string reason;
};

/// Per-entry-point worst-case certificate over the resolved CFG. Gas,
/// cycles, and ops need a closed CFG (no reachable unresolved dynamic
/// jump), reducible control flow, every reachable loop trip-bounded, and
/// no reachable dynamically-costed handler for that dimension; the stack
/// bound needs only known entry heights on every reachable block.
struct WcetCertificate {
  WcetBound gas;     ///< worst-case metered gas (frames that finish)
  WcetBound cycles;  ///< worst-case modeled MCU cycles (energy input)
  WcetBound ops;     ///< worst-case executed instructions (watchdog)
  WcetBound stack;   ///< worst-case stack pointer, in elements
};

enum class Severity : std::uint8_t { Warning, Error };

struct Diagnostic {
  enum class Kind : std::uint8_t {
    UnreachableBlock,    ///< dead code: no path from the entry reaches it
    TruncatedPush,       ///< PUSH immediate runs past the end of code
    InvalidOpcode,       ///< reachable undefined byte
    ForbiddenOpcode,     ///< reachable opcode outside the active profile
    BadJumpTarget,       ///< static jump to a non-JUMPDEST destination
    JumpIntoPushdata,    ///< static jump to a 0x5b byte inside pushdata
    StackMergeConflict,  ///< static edges disagree on the entry height
    ProvenUnderflow,     ///< entry height < the block's stack_require
    ProvenOverflow,      ///< entry height + stack_peak > the stack limit
  };

  Kind kind = Kind::UnreachableBlock;
  Severity severity = Severity::Warning;
  std::uint32_t pc = 0;     ///< byte offset the finding anchors to
  std::uint32_t block = 0;  ///< index into AnalysisReport::blocks
  std::string message;
};

[[nodiscard]] std::string_view to_string(Diagnostic::Kind kind);

struct AnalysisReport {
  std::vector<BasicBlock> blocks;
  std::vector<Diagnostic> diagnostics;  // sorted by pc
  std::vector<LoopInfo> loops;
  WcetCertificate wcet;
  /// A cycle survives removal of all dominator back edges: the CFG has a
  /// loop no natural-loop (and hence no WCET) machinery can bound.
  bool irreducible = false;

  // Dataflow summary, matching DecodedProgram::AnalysisSummary.
  std::uint32_t resolved_jumps = 0;    ///< reachable dynamic exits resolved
  std::uint32_t unresolved_jumps = 0;  ///< reachable dynamic exits left open
  std::uint32_t dead_blocks = 0;
  std::uint32_t dead_slots = 0;  ///< stream slots inside dead blocks

  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
};

struct AnalysisOptions {
  /// Stack element cap used for the overflow proof; 0 skips it.
  std::size_t stack_limit = 0;
  /// The raw bytecode the program was translated from, when the caller
  /// still has it: refines invalid-jump-target diagnostics into
  /// "jump into pushdata" where the destination byte is 0x5b.
  std::span<const std::uint8_t> code = {};
};

/// Builds the basic-block CFG, runs the constant dataflow + reachability +
/// entry-height passes over the resolved edges, detects loops, certifies
/// WCET, and collects diagnostics. Pure function of the translation: safe
/// on any input the translator accepts, including fuzzer garbage.
[[nodiscard]] AnalysisReport analyze(const DecodedProgram& program,
                                     const AnalysisOptions& options = {});

/// Minimum stream slots (body plus a swallowed tail jump's slots) for a
/// span to pay for its entry test.
inline constexpr std::uint32_t kMinElideSpanSlots = 2;

/// The translate-time slice of the pipeline, called by translate() before
/// span attachment: runs the constant dataflow, writes each resolved
/// dynamic jump's destination into its DecodedInst::target (consumed only
/// by the span fast path — checked dispatch still resolves at run time),
/// dead-marks unreachable JUMPDEST leaders (kJumpDestDeadFlag in aux2, so
/// they anchor no span), and fills DecodedProgram::analysis. Deterministic
/// and idempotent for a given (code, profile).
void analyze_for_translation(DecodedProgram& program);

/// Computes DecodedProgram::spans / entry_span: for each live block
/// leader, the maximal run of elidable instructions after it — plus the
/// block's terminating jump when its target is known statically (fused
/// PUSH+JUMP/JUMPI, or a plain JUMP/JUMPI the dataflow resolved) — folded
/// into one stack/gas/watchdog summary. Called by translate(); idempotent.
void attach_elide_spans(DecodedProgram& program);

}  // namespace tinyevm::evm
