#include "evm/opcodes.hpp"

namespace tinyevm::evm {
namespace {

// Istanbul-era static gas tiers.
constexpr std::uint16_t kZero = 0;
constexpr std::uint16_t kBase = 2;
constexpr std::uint16_t kVeryLow = 3;
constexpr std::uint16_t kLow = 5;
constexpr std::uint16_t kMid = 8;
constexpr std::uint16_t kHigh = 10;
constexpr std::uint16_t kSha3 = 30;
constexpr std::uint16_t kSload = 800;
constexpr std::uint16_t kSstore = 20000;  // dynamic part handled in interpreter
constexpr std::uint16_t kBalance = 700;
constexpr std::uint16_t kExt = 700;
constexpr std::uint16_t kBlockhash = 20;
constexpr std::uint16_t kJumpdest = 1;
constexpr std::uint16_t kLog = 375;
constexpr std::uint16_t kCreate = 32000;
constexpr std::uint16_t kCall = 700;
constexpr std::uint16_t kSelfdestruct = 5000;

// Baseline MCU cycle costs for the 32 MHz Cortex-M3 model. 256-bit limb
// loops dominate: a plain ADD walks 8×32-bit limbs with carries, MUL is a
// schoolbook product, DIV a bit-by-bit long division. Values are per the
// paper's observation that one opcode costs "in the order of hundreds of
// MCU cycles" (§III-C), with expensive opcodes proportionally higher.
constexpr std::uint32_t kCycStack = 60;      // push/pop/dup/swap: word moves
constexpr std::uint32_t kCycAdd = 180;       // limb loop with carry
constexpr std::uint32_t kCycCmp = 140;
constexpr std::uint32_t kCycBit = 120;
constexpr std::uint32_t kCycMul = 750;
constexpr std::uint32_t kCycDiv = 4200;      // binary long division
constexpr std::uint32_t kCycModArith = 5200; // 512-bit intermediate
constexpr std::uint32_t kCycExpBase = 2600;  // + per-bit cost in interpreter
constexpr std::uint32_t kCycSha3Base = 42000;  // keccak-f permutation in SW
constexpr std::uint32_t kCycMem = 220;       // bounds check + 32-byte copy
constexpr std::uint32_t kCycStorage = 900;   // slot search + word copy
constexpr std::uint32_t kCycJump = 90;
constexpr std::uint32_t kCycEnv = 160;
constexpr std::uint32_t kCycCopy = 300;      // + per-byte cost in interpreter
constexpr std::uint32_t kCycCall = 9000;     // frame setup
constexpr std::uint32_t kCycCreate = 15000;
constexpr std::uint32_t kCycLog = 1200;
constexpr std::uint32_t kCycSensor = 12000;  // ADC sampling latency

struct TableBuilder {
  std::array<OpInfo, 256> table{};

  void def(std::uint8_t op, std::string_view name, OpCategory cat,
           std::uint8_t in, std::uint8_t out, std::uint16_t gas,
           std::uint32_t cycles, bool tinyevm) {
    table[op] = OpInfo{name, cat, in, out, gas, true, tinyevm, cycles};
  }
};

std::array<OpInfo, 256> build_table() {
  TableBuilder b;
  using C = OpCategory;

  // --- Operation opcodes (27 in both profiles). ---
  b.def(0x00, "STOP", C::Operation, 0, 0, kZero, 20, true);
  b.def(0x01, "ADD", C::Operation, 2, 1, kVeryLow, kCycAdd, true);
  b.def(0x02, "MUL", C::Operation, 2, 1, kLow, kCycMul, true);
  b.def(0x03, "SUB", C::Operation, 2, 1, kVeryLow, kCycAdd, true);
  b.def(0x04, "DIV", C::Operation, 2, 1, kLow, kCycDiv, true);
  b.def(0x05, "SDIV", C::Operation, 2, 1, kLow, kCycDiv + 300, true);
  b.def(0x06, "MOD", C::Operation, 2, 1, kLow, kCycDiv, true);
  b.def(0x07, "SMOD", C::Operation, 2, 1, kLow, kCycDiv + 300, true);
  b.def(0x08, "ADDMOD", C::Operation, 3, 1, kMid, kCycModArith, true);
  b.def(0x09, "MULMOD", C::Operation, 3, 1, kMid, kCycModArith + 2600, true);
  b.def(0x0a, "EXP", C::Operation, 2, 1, kHigh, kCycExpBase, true);
  b.def(0x0b, "SIGNEXTEND", C::Operation, 2, 1, kLow, kCycBit + 80, true);
  b.def(0x10, "LT", C::Operation, 2, 1, kVeryLow, kCycCmp, true);
  b.def(0x11, "GT", C::Operation, 2, 1, kVeryLow, kCycCmp, true);
  b.def(0x12, "SLT", C::Operation, 2, 1, kVeryLow, kCycCmp + 40, true);
  b.def(0x13, "SGT", C::Operation, 2, 1, kVeryLow, kCycCmp + 40, true);
  b.def(0x14, "EQ", C::Operation, 2, 1, kVeryLow, kCycCmp, true);
  b.def(0x15, "ISZERO", C::Operation, 1, 1, kVeryLow, kCycCmp - 40, true);
  b.def(0x16, "AND", C::Operation, 2, 1, kVeryLow, kCycBit, true);
  b.def(0x17, "OR", C::Operation, 2, 1, kVeryLow, kCycBit, true);
  b.def(0x18, "XOR", C::Operation, 2, 1, kVeryLow, kCycBit, true);
  b.def(0x19, "NOT", C::Operation, 1, 1, kVeryLow, kCycBit - 30, true);
  b.def(0x1a, "BYTE", C::Operation, 2, 1, kVeryLow, kCycBit, true);
  b.def(0x1b, "SHL", C::Operation, 2, 1, kVeryLow, kCycBit + 110, true);
  b.def(0x1c, "SHR", C::Operation, 2, 1, kVeryLow, kCycBit + 110, true);
  b.def(0x1d, "SAR", C::Operation, 2, 1, kVeryLow, kCycBit + 150, true);
  b.def(0x20, "SHA3", C::Operation, 2, 1, kSha3, kCycSha3Base, true);

  // --- IoT opcode (TinyEVM only). ---
  b.def(0x0c, "SENSOR", C::Iot, 2, 1, kZero, kCycSensor, true);
  b.table[0x0c].defined = false;  // unused slot in the original EVM

  // --- Smart-contract opcodes (25 EVM / 21 TinyEVM). GAS, GASPRICE and the
  // EXTCODE* pair need live chain state or fee accounting, so the TinyEVM
  // profile drops them (paper: "no charging for the off-chain
  // computations"). ---
  b.def(0x30, "ADDRESS", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x31, "BALANCE", C::SmartContract, 1, 1, kBalance, kCycEnv + 240, true);
  b.def(0x32, "ORIGIN", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x33, "CALLER", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x34, "CALLVALUE", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x35, "CALLDATALOAD", C::SmartContract, 1, 1, kVeryLow, kCycMem, true);
  b.def(0x36, "CALLDATASIZE", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x37, "CALLDATACOPY", C::SmartContract, 3, 0, kVeryLow, kCycCopy, true);
  b.def(0x38, "CODESIZE", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x39, "CODECOPY", C::SmartContract, 3, 0, kVeryLow, kCycCopy, true);
  b.def(0x3a, "GASPRICE", C::SmartContract, 0, 1, kBase, kCycEnv, false);
  b.def(0x3b, "EXTCODESIZE", C::SmartContract, 1, 1, kExt, kCycEnv, false);
  b.def(0x3c, "EXTCODECOPY", C::SmartContract, 4, 0, kExt, kCycCopy, false);
  b.def(0x3d, "RETURNDATASIZE", C::SmartContract, 0, 1, kBase, kCycEnv, true);
  b.def(0x3e, "RETURNDATACOPY", C::SmartContract, 3, 0, kVeryLow, kCycCopy,
        true);
  b.def(0x5a, "GAS", C::SmartContract, 0, 1, kBase, kCycEnv, false);
  b.def(0xa0, "LOG0", C::SmartContract, 2, 0, kLog, kCycLog, true);
  b.def(0xa1, "LOG1", C::SmartContract, 3, 0, kLog * 2, kCycLog + 400, true);
  b.def(0xa2, "LOG2", C::SmartContract, 4, 0, kLog * 3, kCycLog + 800, true);
  b.def(0xa3, "LOG3", C::SmartContract, 5, 0, kLog * 4, kCycLog + 1200, true);
  b.def(0xa4, "LOG4", C::SmartContract, 6, 0, kLog * 5, kCycLog + 1600, true);
  b.def(0xf0, "CREATE", C::SmartContract, 3, 1, kCreate, kCycCreate, true);
  b.def(0xf1, "CALL", C::SmartContract, 7, 1, kCall, kCycCall, true);
  b.def(0xf2, "CALLCODE", C::SmartContract, 7, 1, kCall, kCycCall, true);
  b.def(0xf3, "RETURN", C::SmartContract, 2, 0, kZero, kCycMem, true);
  b.def(0xf4, "DELEGATECALL", C::SmartContract, 6, 1, kCall, kCycCall, true);
  b.def(0xfa, "STATICCALL", C::SmartContract, 6, 1, kCall, kCycCall, true);
  b.def(0xfd, "REVERT", C::SmartContract, 2, 0, kZero, kCycMem, true);
  b.def(0xff, "SELFDESTRUCT", C::SmartContract, 1, 0, kSelfdestruct,
        kCycEnv + 500, true);
  // INVALID (0xfe) aborts by definition; it is "defined" but belongs to no
  // category in the paper's census (it is not an *active* operation).
  b.table[0xfe] =
      OpInfo{"INVALID", C::Unassigned, 0, 0, 0, true, true, 20};

  // --- Memory opcodes (13 in both; PUSH/DUP/SWAP are families). ---
  b.def(0x50, "POP", C::Memory, 1, 0, kBase, kCycStack, true);
  b.def(0x51, "MLOAD", C::Memory, 1, 1, kVeryLow, kCycMem, true);
  b.def(0x52, "MSTORE", C::Memory, 2, 0, kVeryLow, kCycMem, true);
  b.def(0x53, "MSTORE8", C::Memory, 2, 0, kVeryLow, kCycMem - 90, true);
  b.def(0x54, "SLOAD", C::Memory, 1, 1, kSload, kCycStorage, true);
  b.def(0x55, "SSTORE", C::Memory, 2, 0, kSstore, kCycStorage + 300, true);
  b.def(0x56, "JUMP", C::Memory, 1, 0, kMid, kCycJump, true);
  b.def(0x57, "JUMPI", C::Memory, 2, 0, kHigh, kCycJump + 40, true);
  b.def(0x58, "PC", C::Memory, 0, 1, kBase, kCycStack, true);
  b.def(0x59, "MSIZE", C::Memory, 0, 1, kBase, kCycStack, true);
  // JUMPDEST is a position marker consumed by static analysis rather than an
  // operation; keeping it out of the census reproduces the paper's counts
  // (13 memory opcodes, 71 active total).
  b.def(0x5b, "JUMPDEST", C::Unassigned, 0, 0, kJumpdest, 10, true);
  for (unsigned op = 0x60; op <= 0x7f; ++op) {
    b.def(static_cast<std::uint8_t>(op), "PUSH", C::Memory, 0, 1, kVeryLow,
          kCycStack + (op - 0x5f) * 6, true);
  }
  for (unsigned op = 0x80; op <= 0x8f; ++op) {
    b.def(static_cast<std::uint8_t>(op), "DUP", C::Memory,
          static_cast<std::uint8_t>(op - 0x7f), 0, kVeryLow, kCycStack, true);
    b.table[op].stack_out = static_cast<std::uint8_t>(op - 0x7f + 1);
  }
  for (unsigned op = 0x90; op <= 0x9f; ++op) {
    b.def(static_cast<std::uint8_t>(op), "SWAP", C::Memory,
          static_cast<std::uint8_t>(op - 0x8e), 0, kVeryLow, kCycStack + 30,
          true);
    b.table[op].stack_out = static_cast<std::uint8_t>(op - 0x8e);
  }

  // --- Blockchain opcodes (6; EVM profile only). ---
  b.def(0x40, "BLOCKHASH", C::Blockchain, 1, 1, kBlockhash, kCycEnv, false);
  b.def(0x41, "COINBASE", C::Blockchain, 0, 1, kBase, kCycEnv, false);
  b.def(0x42, "TIMESTAMP", C::Blockchain, 0, 1, kBase, kCycEnv, false);
  b.def(0x43, "NUMBER", C::Blockchain, 0, 1, kBase, kCycEnv, false);
  b.def(0x44, "DIFFICULTY", C::Blockchain, 0, 1, kBase, kCycEnv, false);
  b.def(0x45, "GASLIMIT", C::Blockchain, 0, 1, kBase, kCycEnv, false);

  return b.table;
}

}  // namespace

const std::array<OpInfo, 256>& opcode_table() {
  static const std::array<OpInfo, 256> kTable = build_table();
  return kTable;
}

const OpInfo& info(Opcode op) { return info(static_cast<std::uint8_t>(op)); }
const OpInfo& info(std::uint8_t raw) { return opcode_table()[raw]; }

OpValidity classify(std::uint8_t op, bool tiny_profile, bool iot_opcodes,
                    bool block_opcodes) {
  const OpInfo& inf = info(op);
  const bool sensor = op == static_cast<std::uint8_t>(Opcode::SENSOR);
  if (!inf.defined && !(tiny_profile && sensor && iot_opcodes)) {
    return OpValidity::Undefined;
  }
  if (tiny_profile && !inf.tinyevm) return OpValidity::Forbidden;
  if (!tiny_profile) {
    if (sensor) return OpValidity::Undefined;  // unknown to the original EVM
    if (inf.category == OpCategory::Blockchain && !block_opcodes) {
      return OpValidity::Forbidden;
    }
  }
  return OpValidity::Ok;
}

CategoryCensus census(bool tinyevm_profile) {
  CategoryCensus out;
  const auto& table = opcode_table();
  for (unsigned op = 0; op < 256; ++op) {
    const OpInfo& inf = table[op];
    const bool active = tinyevm_profile
                            ? inf.tinyevm && (inf.defined || op == 0x0c)
                            : inf.defined;
    if (!active || inf.category == OpCategory::Unassigned) continue;
    // Families: only the first member of PUSH/DUP/SWAP/LOG counts.
    if ((is_push(static_cast<std::uint8_t>(op)) && op != 0x60) ||
        (is_dup(static_cast<std::uint8_t>(op)) && op != 0x80) ||
        (is_swap(static_cast<std::uint8_t>(op)) && op != 0x90) ||
        (is_log(static_cast<std::uint8_t>(op)) && op != 0xa0)) {
      continue;
    }
    switch (inf.category) {
      case OpCategory::Operation: ++out.operation; break;
      case OpCategory::SmartContract: ++out.smart_contract; break;
      case OpCategory::Memory: ++out.memory; break;
      case OpCategory::Blockchain: ++out.blockchain; break;
      case OpCategory::Iot: ++out.iot; break;
      case OpCategory::Unassigned: break;
    }
  }
  return out;
}

}  // namespace tinyevm::evm
