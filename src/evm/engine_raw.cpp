// ---------------------------------------------------------------------------
// Token-threaded interpreter loop (the RawThreadedEngine body)
// ---------------------------------------------------------------------------
//
// Per-opcode path: one table load, one (predictable) validity branch, the
// folded gas/cycle/watchdog accounting, then a direct jump to the handler.
// This loop decodes from raw bytecode every run; it is the fallback for
// translate misses and oversized code, and the semantic reference the
// pre-decoded loop in engine_decoded.cpp must match bit-for-bit (the
// golden/differential suite in tests/evm_dispatch_test.cpp holds every
// registered engine to identical results).
//
// Binary operators pop ONE operand and rewrite the second in place via
// Stack::top() and the U256 *_assign ops, eliminating the two
// optional<U256> round-trips and the result push of a pop/pop/push scheme.
//
// This TU builds with -fno-crossjumping -fno-gcse under GCC so the
// replicated dispatch tails stay distinct (see TINYEVM_NEXT below).

#include <limits>

#include "evm/frame.hpp"

namespace tinyevm::evm {

void Frame::run_threaded() {
  const DispatchEntry* const entries = table_.entries.data();
  const std::uint8_t* const code = msg_.code.data();
  const std::uint64_t code_size = msg_.code.size();
  const bool metered = profile_.metering;
  const std::uint64_t ops_cap =
      profile_.max_ops == 0 ? std::numeric_limits<std::uint64_t>::max()
                            : profile_.max_ops;
  std::uint64_t pc = 0;
  const DispatchEntry* e = nullptr;
  // Register-cached copies of the per-op hot state: the accounting
  // counters the dispatch prologue touches every opcode, the operand
  // stack (base/sp/high-water), and — crucially — the top-of-stack
  // *value* itself. With `tos` in registers a DUP1/binary-op pair runs
  // one store plus one load instead of chaining every operand through
  // memory. Invariant: when sp > 0 the logical top lives in `tos` and
  // base()[sp-1] is stale; TINYEVM_SYNCED restores the flat-memory view
  // around any helper call, and run_exit publishes the final state.
  std::int64_t gas = gas_;
  std::uint64_t cyc = cycles_;
  std::uint64_t ops = ops_;
  U256* const sb = stack_.base();  // sb[-1] is a scratch word (see Stack)
  const std::size_t slimit = stack_.limit();
  std::size_t sp = stack_.size();
  std::size_t smax = stack_.max_pointer();
  U256 tos = sp != 0 ? sb[sp - 1] : U256{};

#define TINYEVM_SYNCED(expr)        \
  do {                              \
    gas_ = gas;                     \
    cycles_ = cyc;                  \
    sb[sp - 1] = tos;               \
    stack_.set_state(sp, smax);     \
    expr;                           \
    gas = gas_;                     \
    cyc = cycles_;                  \
    sp = stack_.size();             \
    smax = stack_.max_pointer();    \
    tos = sb[sp - 1];               \
  } while (0)

// Stack push against the cached registers; overflow fails the frame (the
// following dispatch notices done_), matching Frame::push.
#define TINYEVM_PUSH(v)             \
  do {                              \
    if (sp >= slimit) {             \
      fail(Status::StackOverflow);  \
    } else {                        \
      sb[sp - 1] = tos;             \
      tos = (v);                    \
      ++sp;                         \
      if (sp > smax) smax = sp;     \
    }                               \
  } while (0)

// The prologue every opcode runs: bounds/halt check, table load, validity
// short-circuit, folded static gas, cycle model, watchdog, pc advance.
#define TINYEVM_PROLOGUE()                                                  \
  if (done_ || pc >= code_size) goto run_exit;                              \
  e = &entries[code[pc]];                                                   \
  if (static_cast<std::uint8_t>(e->handler) <=                              \
      static_cast<std::uint8_t>(Handler::Forbidden)) {                      \
    fail(e->handler == Handler::Undefined ? Status::InvalidOpcode           \
                                          : Status::ForbiddenOpcode);       \
    goto run_exit;                                                          \
  }                                                                         \
  if (metered) {                                                            \
    gas -= e->gas;                                                          \
    if (gas < 0) {                                                          \
      fail(Status::OutOfGas);                                               \
      goto run_exit;                                                        \
    }                                                                       \
  }                                                                         \
  cyc += e->cycles;                                                         \
  if (++ops > ops_cap) {                                                    \
    fail(Status::WatchdogExpired);                                          \
    goto run_exit;                                                          \
  }                                                                         \
  ++pc;

#if TINYEVM_COMPUTED_GOTO
  static const void* const kJump[] = {
#define TINYEVM_H_LABEL(name) &&h_##name,
      TINYEVM_HANDLER_LIST(TINYEVM_H_LABEL)
#undef TINYEVM_H_LABEL
  };
#define TINYEVM_OP(name) h_##name:
// Token threading proper: every handler tail replicates the full dispatch
// sequence instead of jumping back to a single shared dispatch point, so
// the indirect branch predictor sees one site per handler and can learn
// the bytecode's opcode-pair patterns. (This TU builds with
// -fno-crossjumping -fno-gcse under GCC so the copies stay distinct.)
#define TINYEVM_NEXT                                           \
  do {                                                         \
    TINYEVM_PROLOGUE()                                         \
    goto *kJump[static_cast<std::uint8_t>(e->handler)];        \
  } while (0)
  TINYEVM_NEXT;
#else
#define TINYEVM_OP(name) case Handler::name:
#define TINYEVM_NEXT break
  for (;;) {
    TINYEVM_PROLOGUE()
    switch (e->handler) {
#endif

  // Unreachable in practice — the prologue short-circuits these two — but
  // kept as real handlers so the jump table is total.
  TINYEVM_OP(Undefined) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(Forbidden) { fail(Status::ForbiddenOpcode); }
  TINYEVM_NEXT;

  TINYEVM_OP(Stop) { done_ = true; }
  TINYEVM_NEXT;

// Binary operators: the first operand is `tos` (in registers), `s` is the
// second operand's memory slot. The body leaves the result in `tos`; the
// pop is just --sp, so the pair costs one load instead of the legacy
// pop/pop/push round-trips.
#define TINYEVM_BINARY(body)                    \
  {                                             \
    if (sp < 2) {                               \
      fail(Status::StackUnderflow);             \
      TINYEVM_NEXT;                             \
    }                                           \
    const U256& s = sb[sp - 2];                 \
    body;                                       \
    --sp;                                       \
  }                                             \
  TINYEVM_NEXT

  TINYEVM_OP(Add) TINYEVM_BINARY(tos.add_assign(s));
  TINYEVM_OP(Mul) TINYEVM_BINARY(tos.mul_assign(s));
  TINYEVM_OP(Sub) TINYEVM_BINARY(tos.sub_assign(s));  // tos = top - second
  TINYEVM_OP(Div) TINYEVM_BINARY(tos = tos / s);
  TINYEVM_OP(Sdiv) TINYEVM_BINARY(tos = U256::sdiv(tos, s));
  TINYEVM_OP(Mod) TINYEVM_BINARY(tos = tos % s);
  TINYEVM_OP(Smod) TINYEVM_BINARY(tos = U256::smod(tos, s));
  TINYEVM_OP(Lt) TINYEVM_BINARY(tos = U256{tos < s ? 1ULL : 0ULL});
  TINYEVM_OP(Gt) TINYEVM_BINARY(tos = U256{tos > s ? 1ULL : 0ULL});
  TINYEVM_OP(Slt) TINYEVM_BINARY(tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Sgt) TINYEVM_BINARY(tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Eq) TINYEVM_BINARY(tos = U256{tos == s ? 1ULL : 0ULL});
  TINYEVM_OP(And) TINYEVM_BINARY(tos.and_assign(s));
  TINYEVM_OP(Or) TINYEVM_BINARY(tos.or_assign(s));
  TINYEVM_OP(Xor) TINYEVM_BINARY(tos.xor_assign(s));
  TINYEVM_OP(Byte) TINYEVM_BINARY(tos = U256::byte(tos, s));
  TINYEVM_OP(Shl) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shl_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Shr) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shr_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Sar) TINYEVM_BINARY(tos = U256::sar(tos, s));
  TINYEVM_OP(SignExtend) TINYEVM_BINARY(tos = U256::signextend(tos, s));

#undef TINYEVM_BINARY

  TINYEVM_OP(AddMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MulMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Exp) { TINYEVM_SYNCED(op_exp()); }
  TINYEVM_NEXT;

  TINYEVM_OP(IsZero) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{tos.is_zero() ? 1ULL : 0ULL};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Not) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos.not_assign();
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Sensor) { TINYEVM_SYNCED(op_sensor()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Sha3) { TINYEVM_SYNCED(op_sha3()); }
  TINYEVM_NEXT;

  // --- environment ---
  TINYEVM_OP(Address) { TINYEVM_PUSH(U256::from_bytes(msg_.self)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Origin) { TINYEVM_PUSH(U256::from_bytes(msg_.origin)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Caller) { TINYEVM_PUSH(U256::from_bytes(msg_.caller)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallValue) { TINYEVM_PUSH(msg_.value); }
  TINYEVM_NEXT;
  TINYEVM_OP(Balance) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.balance(to_address(tos));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = calldata_word(tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataSize) { TINYEVM_PUSH(U256{msg_.data.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeSize) { TINYEVM_PUSH(U256{msg_.code.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataSize) { TINYEVM_PUSH(U256{return_data_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataCopy) { TINYEVM_SYNCED(op_copy(msg_.data, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeCopy) { TINYEVM_SYNCED(op_copy(msg_.code, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataCopy) { TINYEVM_SYNCED(op_copy(return_data_, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasPrice) { TINYEVM_PUSH(U256{1}); }  // flat simulated price
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeSize) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{host_.code_at(to_address(tos)).size()};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeCopy) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address addr = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    TINYEVM_SYNCED(op_copy(host_.code_at(addr), true));
  }
  TINYEVM_NEXT;

  // --- block data ---
  TINYEVM_OP(BlockHash) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = tos.fits_u64() ? U256::from_bytes(host_.block_hash(tos.as_u64()))
                         : U256{};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Coinbase) {
    TINYEVM_PUSH(U256::from_bytes(host_.block_info().coinbase));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Timestamp) { TINYEVM_PUSH(U256{host_.block_info().timestamp}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Number) { TINYEVM_PUSH(U256{host_.block_info().number}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Difficulty) { TINYEVM_PUSH(host_.block_info().difficulty); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasLimit) { TINYEVM_PUSH(U256{host_.block_info().gas_limit}); }
  TINYEVM_NEXT;

  // --- stack / memory / storage / control flow ---
  TINYEVM_OP(Pop) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    tos = memory_.load_word(off);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    memory_.store_word(off, sb[sp - 2]);
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore8) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 1));
    if (!ok) TINYEVM_NEXT;
    memory_.store_byte(off, static_cast<std::uint8_t>(sb[sp - 2].limb(0) &
                                                      0xFF));
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.sload(msg_.self, tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SStore) { TINYEVM_SYNCED(op_sstore()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Jump) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64() || !analysis_->valid_jumpdest(tos.as_u64())) {
      fail(Status::InvalidJump);
      TINYEVM_NEXT;
    }
    pc = tos.as_u64();
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpI) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const bool taken = !sb[sp - 2].is_zero();
    const bool dest_ok = tos.fits_u64();
    const std::uint64_t dest = tos.as_u64();
    sp -= 2;
    tos = sb[sp - 1];
    if (taken) {
      if (!dest_ok || !analysis_->valid_jumpdest(dest)) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      pc = dest;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Pc) { TINYEVM_PUSH(U256{pc - 1}); }
  TINYEVM_NEXT;
  TINYEVM_OP(MSize) { TINYEVM_PUSH(U256{memory_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Gas) {
    TINYEVM_PUSH(U256{static_cast<std::uint64_t>(gas > 0 ? gas : 0)});
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpDest) {}
  TINYEVM_NEXT;

  // --- stack families (index in e->aux) ---
  TINYEVM_OP(Push) {
    const unsigned n = e->aux;
    const U256 v =
        load_push(code + pc, pc < code_size ? code_size - pc : 0, n);
    pc += n;
    TINYEVM_PUSH(v);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Dup) {
    const unsigned n = e->aux;
    if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    // Macro-op fusion: DUP1 immediately followed by MUL/ADD (the squaring
    // and doubling accumulation patterns) nets out to `top = top (x) top`
    // with the stack pointer unchanged, so the pair runs entirely in the
    // tos registers — no spill, no reload. Both ops are accounted exactly
    // as if executed separately; if the second op would trip gas or the
    // watchdog, fall through to the plain DUP so the failure point and
    // counters match the unfused path bit-for-bit.
    if (n == 1 && pc < code_size) {
      const DispatchEntry& ne = entries[code[pc]];
      if ((ne.handler == Handler::Mul || ne.handler == Handler::Add) &&
          (!metered || gas >= ne.gas) && ops < ops_cap) {
        if (metered) gas -= ne.gas;
        cyc += ne.cycles;
        ++ops;
        ++pc;
        if (sp + 1 > smax) smax = sp + 1;  // the transient DUP1 high-water
        if (ne.handler == Handler::Mul) {
          tos.mul_assign(tos);
        } else {
          tos.add_assign(tos);
        }
        TINYEVM_NEXT;
      }
    }
    sb[sp - 1] = tos;                 // spill; DUP1 keeps tos as-is
    if (n > 1) tos = sb[sp - n];
    ++sp;
    if (sp > smax) smax = sp;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Swap) {
    const unsigned n = e->aux;
    if (n + 1 > sp) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    U256& other = sb[sp - 1 - n];
    const U256 t = other;
    other = tos;
    tos = t;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Log) { TINYEVM_SYNCED(op_log(e->aux)); }
  TINYEVM_NEXT;

  // --- lifecycle ---
  TINYEVM_OP(Create) { TINYEVM_SYNCED(op_create()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Call) { TINYEVM_SYNCED(op_call(CallKind::Call)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallCode) { TINYEVM_SYNCED(op_call(CallKind::CallCode)); }
  TINYEVM_NEXT;
  TINYEVM_OP(DelegateCall) { TINYEVM_SYNCED(op_call(CallKind::DelegateCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(StaticCall) { TINYEVM_SYNCED(op_call(CallKind::StaticCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Return) { TINYEVM_SYNCED(op_return(false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Revert) { TINYEVM_SYNCED(op_return(true)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Invalid) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SelfDestruct) {
    if (msg_.is_static) {
      fail(Status::StaticViolation);
      TINYEVM_NEXT;
    }
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address beneficiary = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    host_.self_destruct(msg_.self, beneficiary);
    done_ = true;
  }
  TINYEVM_NEXT;

  // Superinstructions exist only in pre-decoded streams; the raw dispatch
  // table never maps a code byte to them. Labels are kept so the jump
  // table built from TINYEVM_HANDLER_LIST stays total.
  TINYEVM_OP(PushBin) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(DupBin) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SwapBin) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJump) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJumpI) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;

#if !TINYEVM_COMPUTED_GOTO
    }  // switch
  }  // for
#endif

run_exit:
  pc_ = pc;
  gas_ = gas;
  cycles_ = cyc;
  ops_ = ops;
  sb[sp - 1] = tos;  // restore the flat-memory stack view
  stack_.set_state(sp, smax);

#undef TINYEVM_SYNCED
#undef TINYEVM_PUSH
#undef TINYEVM_PROLOGUE
#undef TINYEVM_OP
#undef TINYEVM_NEXT
}

}  // namespace tinyevm::evm
