// EVM opcode set and metadata.
//
// The paper (Table I) groups the 71 active opcodes of the 2019-era EVM into
// five categories and specifies which survive in TinyEVM:
//
//   category          EVM   TinyEVM   composition (families count once)
//   operation          27     27      STOP + arithmetic + compare/bitwise + SHA3
//   smart contract     25     21      env/call/return family minus GAS,
//                                     GASPRICE, EXTCODESIZE, EXTCODECOPY
//   memory             13     13      stack/memory/storage/jump family
//   blockchain          6      -      BLOCKHASH..GASLIMIT, all removed
//   IoT                 -      1      SENSOR (0x0c, a formerly-unused opcode)
//
// PUSH1-32, DUP1-16, SWAP1-16 and LOG0-4 count as one family member each,
// which reproduces both the per-category counts and the 71-opcode total.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace tinyevm::evm {

enum class Opcode : std::uint8_t {
  STOP = 0x00,
  ADD = 0x01,
  MUL = 0x02,
  SUB = 0x03,
  DIV = 0x04,
  SDIV = 0x05,
  MOD = 0x06,
  SMOD = 0x07,
  ADDMOD = 0x08,
  MULMOD = 0x09,
  EXP = 0x0a,
  SIGNEXTEND = 0x0b,
  SENSOR = 0x0c,  // TinyEVM IoT opcode (unused slot in the original EVM)

  LT = 0x10,
  GT = 0x11,
  SLT = 0x12,
  SGT = 0x13,
  EQ = 0x14,
  ISZERO = 0x15,
  AND = 0x16,
  OR = 0x17,
  XOR = 0x18,
  NOT = 0x19,
  BYTE = 0x1a,
  SHL = 0x1b,
  SHR = 0x1c,
  SAR = 0x1d,

  SHA3 = 0x20,

  ADDRESS = 0x30,
  BALANCE = 0x31,
  ORIGIN = 0x32,
  CALLER = 0x33,
  CALLVALUE = 0x34,
  CALLDATALOAD = 0x35,
  CALLDATASIZE = 0x36,
  CALLDATACOPY = 0x37,
  CODESIZE = 0x38,
  CODECOPY = 0x39,
  GASPRICE = 0x3a,
  EXTCODESIZE = 0x3b,
  EXTCODECOPY = 0x3c,
  RETURNDATASIZE = 0x3d,
  RETURNDATACOPY = 0x3e,

  BLOCKHASH = 0x40,
  COINBASE = 0x41,
  TIMESTAMP = 0x42,
  NUMBER = 0x43,
  DIFFICULTY = 0x44,
  GASLIMIT = 0x45,

  POP = 0x50,
  MLOAD = 0x51,
  MSTORE = 0x52,
  MSTORE8 = 0x53,
  SLOAD = 0x54,
  SSTORE = 0x55,
  JUMP = 0x56,
  JUMPI = 0x57,
  PC = 0x58,
  MSIZE = 0x59,
  GAS = 0x5a,
  JUMPDEST = 0x5b,

  PUSH1 = 0x60,
  // ... PUSH2..PUSH32 are 0x61..0x7f
  PUSH32 = 0x7f,
  DUP1 = 0x80,
  DUP16 = 0x8f,
  SWAP1 = 0x90,
  SWAP16 = 0x9f,
  LOG0 = 0xa0,
  LOG4 = 0xa4,

  CREATE = 0xf0,
  CALL = 0xf1,
  CALLCODE = 0xf2,
  RETURN = 0xf3,
  DELEGATECALL = 0xf4,
  STATICCALL = 0xfa,
  REVERT = 0xfd,
  INVALID = 0xfe,
  SELFDESTRUCT = 0xff,
};

/// Paper Table I categories.
enum class OpCategory : std::uint8_t {
  Operation,      ///< computation: arithmetic, compare, bitwise, SHA3, STOP
  SmartContract,  ///< environment, calls, returns, logs, lifecycle
  Memory,         ///< stack / RAM / storage / control-flow family
  Blockchain,     ///< block-header introspection (absent in TinyEVM)
  Iot,            ///< TinyEVM sensor/actuator extension
  Unassigned,     ///< not an active opcode
};

struct OpInfo {
  std::string_view name;
  OpCategory category = OpCategory::Unassigned;
  std::uint8_t stack_in = 0;    ///< operands popped
  std::uint8_t stack_out = 0;   ///< results pushed
  std::uint16_t base_gas = 0;   ///< static gas charge (Istanbul-era values)
  bool defined = false;         ///< active in the original EVM
  bool tinyevm = false;         ///< active in the TinyEVM profile
  /// Baseline MCU cycles to execute on the modeled 32 MHz Cortex-M3
  /// (256-bit emulation: "hundreds of cycles" per opcode, paper §III-C).
  std::uint32_t mcu_cycles = 0;
};

/// Metadata for every possible byte value (undefined entries have
/// `defined == false`).
const std::array<OpInfo, 256>& opcode_table();

[[nodiscard]] const OpInfo& info(Opcode op);
[[nodiscard]] const OpInfo& info(std::uint8_t raw);

/// PUSH1..PUSH32 immediate size; 0 for non-push opcodes.
[[nodiscard]] constexpr unsigned push_size(std::uint8_t op) {
  return (op >= 0x60 && op <= 0x7f) ? op - 0x5f : 0;
}
[[nodiscard]] constexpr bool is_push(std::uint8_t op) {
  return op >= 0x60 && op <= 0x7f;
}
[[nodiscard]] constexpr bool is_dup(std::uint8_t op) {
  return op >= 0x80 && op <= 0x8f;
}
[[nodiscard]] constexpr bool is_swap(std::uint8_t op) {
  return op >= 0x90 && op <= 0x9f;
}
[[nodiscard]] constexpr bool is_log(std::uint8_t op) {
  return op >= 0xa0 && op <= 0xa4;
}

/// Executability of a byte under a profile; shared by the legacy switch
/// dispatcher and the token-threaded dispatch-table builder so both agree
/// byte-for-byte on which opcodes run.
enum class OpValidity : std::uint8_t {
  Ok,         ///< executable under the given profile flags
  Undefined,  ///< not an opcode here -> Status::InvalidOpcode
  Forbidden,  ///< defined, but removed by the profile -> ForbiddenOpcode
};

/// Classifies `op` under the profile flags (TinyEVM vs Ethereum, SENSOR
/// availability, blockchain-opcode availability). Pure function of the
/// opcode table; the interpreter folds the result into its dispatch table.
[[nodiscard]] OpValidity classify(std::uint8_t op, bool tiny_profile,
                                  bool iot_opcodes, bool block_opcodes);

/// Category census used by the Table I benchmark: counts *family* members
/// (PUSH/DUP/SWAP/LOG collapse to one entry each) to match the paper's
/// accounting.
struct CategoryCensus {
  unsigned operation = 0;
  unsigned smart_contract = 0;
  unsigned memory = 0;
  unsigned blockchain = 0;
  unsigned iot = 0;
  [[nodiscard]] unsigned total() const {
    return operation + smart_contract + memory + blockchain + iot;
  }
};
[[nodiscard]] CategoryCensus census(bool tinyevm_profile);

}  // namespace tinyevm::evm
