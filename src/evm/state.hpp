// VM state containers: operand stack, byte-addressed memory, and the two
// storage flavours (256-bit Ethereum keys vs TinyEVM's 8-bit / 1 KB
// side-chain storage, paper Table I).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "u256/u256.hpp"

namespace tinyevm::evm {

using Bytes = std::vector<std::uint8_t>;

/// Operand stack with a configurable element limit (Ethereum: 1024 elements;
/// TinyEVM: 3 KB = 96 elements, paper §VI-A). Tracks the maximum stack
/// pointer reached, which Figure 3c reports per contract.
///
/// Backed by one fixed allocation of `limit` words instead of a growing
/// std::vector: the interpreter touches the stack on almost every opcode,
/// and the vector's capacity bookkeeping (and reallocation-safe copy in
/// push_back) showed up in the dispatch-ablation profile.
class Stack {
 public:
  // One extra word is allocated *below* slot 0: the token-threaded
  // interpreter caches the top-of-stack value in a register and spills it
  // with an unconditional `base()[sp - 1] = tos`, which for an empty stack
  // lands harmlessly in that scratch word instead of out of bounds.
  explicit Stack(std::size_t limit)
      : data_(std::make_unique_for_overwrite<U256[]>(limit + 1)),
        limit_(limit) {}

  [[nodiscard]] std::size_t size() const { return sp_; }
  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] std::size_t max_pointer() const { return max_pointer_; }

  /// False on overflow.
  [[nodiscard]] bool push(const U256& v) {
    if (sp_ >= limit_) return false;
    slots()[sp_++] = v;
    if (sp_ > max_pointer_) max_pointer_ = sp_;
    return true;
  }
  /// Nullopt on underflow.
  std::optional<U256> pop() {
    if (sp_ == 0) return std::nullopt;
    return slots()[--sp_];
  }
  /// Peek at depth n from the top (0 == top); nullopt if out of range.
  [[nodiscard]] std::optional<U256> peek(std::size_t n = 0) const {
    if (n >= sp_) return std::nullopt;
    return slots()[sp_ - 1 - n];
  }
  /// Mutable reference at depth n from the top (0 == top); callers must
  /// bounds-check with size() first.
  [[nodiscard]] U256& top(std::size_t n = 0) { return slots()[sp_ - 1 - n]; }
  [[nodiscard]] const U256& top(std::size_t n = 0) const {
    return slots()[sp_ - 1 - n];
  }
  /// Unchecked pop discarding the value; callers must check size() first.
  void drop() { --sp_; }
  /// Register-cache hooks for the token-threaded interpreter: it keeps
  /// (base pointer, sp, max, top value) in locals across the hot loop and
  /// publishes them back through set_state() around calls that use this
  /// interface. base()[-1] is the scratch word described above.
  [[nodiscard]] U256* base() { return slots(); }
  void set_state(std::size_t sp, std::size_t max_pointer) {
    sp_ = sp;
    max_pointer_ = max_pointer;
  }
  /// DUPn: duplicate the n-th item (1-based) onto the top.
  [[nodiscard]] bool dup(unsigned n) {
    if (n == 0 || n > sp_ || sp_ >= limit_) return false;
    slots()[sp_] = slots()[sp_ - n];
    ++sp_;
    if (sp_ > max_pointer_) max_pointer_ = sp_;
    return true;
  }
  /// SWAPn: exchange top with the (n+1)-th item (1-based n).
  [[nodiscard]] bool swap(unsigned n) {
    if (n == 0 || n + 1 > sp_) return false;
    std::swap(slots()[sp_ - 1], slots()[sp_ - 1 - n]);
    return true;
  }

 private:
  [[nodiscard]] U256* slots() { return data_.get() + 1; }
  [[nodiscard]] const U256* slots() const { return data_.get() + 1; }

  std::unique_ptr<U256[]> data_;
  std::size_t limit_;
  std::size_t sp_ = 0;
  std::size_t max_pointer_ = 0;
};

/// Byte-addressed, zero-initialized, word-expanding memory. A non-zero
/// `limit` caps growth (TinyEVM: 8 KB); Ethereum-mode growth is bounded by
/// gas instead. Peak size feeds the Figure 3a/3b memory-usage statistics.
class Memory {
 public:
  explicit Memory(std::size_t limit) : limit_(limit) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t peak() const { return data_.size(); }

  /// Grows to cover [offset, offset+len) rounded up to 32-byte words.
  /// False when the growth would exceed the configured limit.
  [[nodiscard]] bool expand(std::uint64_t offset, std::uint64_t len) {
    if (len == 0) return true;
    const std::uint64_t end = offset + len;
    if (end < offset) return false;  // address overflow
    if (end > kHardCap) return false;  // would std::bad_alloc, not OOM-fail
    const std::uint64_t words = (end + 31) / 32;
    const std::uint64_t target = words * 32;
    if (limit_ != 0 && target > limit_) return false;
    if (target > data_.size()) data_.resize(target, 0);
    return true;
  }

  [[nodiscard]] U256 load_word(std::uint64_t offset) const {
    std::array<std::uint8_t, 32> buf{};
    for (unsigned i = 0; i < 32; ++i) {
      if (offset + i < data_.size()) buf[i] = data_[offset + i];
    }
    return U256::from_word(buf);
  }
  void store_word(std::uint64_t offset, const U256& v) {
    const auto w = v.to_word();
    std::copy(w.begin(), w.end(), data_.begin() + static_cast<long>(offset));
  }
  void store_byte(std::uint64_t offset, std::uint8_t b) { data_[offset] = b; }
  /// Copies `src` into memory, zero-filling when src is shorter than len
  /// (EVM *COPY semantics).
  void store_bytes(std::uint64_t offset, std::span<const std::uint8_t> src,
                   std::uint64_t src_offset, std::uint64_t len) {
    for (std::uint64_t i = 0; i < len; ++i) {
      const std::uint64_t s = src_offset + i;
      data_[offset + i] = s < src.size() ? src[s] : 0;
    }
  }
  [[nodiscard]] Bytes read(std::uint64_t offset, std::uint64_t len) const {
    Bytes out(len, 0);
    for (std::uint64_t i = 0; i < len; ++i) {
      if (offset + i < data_.size()) out[i] = data_[offset + i];
    }
    return out;
  }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return data_; }

 private:
  /// Absolute backstop for "unbounded" (limit == 0) memory: gas normally
  /// prices growth out long before this, but a wrapped or unmetered
  /// expansion must fail typed (OutOfMemory) instead of throwing
  /// std::bad_alloc out of the interpreter.
  static constexpr std::uint64_t kHardCap = 1ULL << 32;  // 4 GiB

  Bytes data_;
  std::size_t limit_;
};

/// TinyEVM side-chain storage: keys truncated to 8 bits (256 slots) with a
/// 1 KB byte budget — 32 words of 32 bytes. SSTORE beyond the budget fails
/// the execution, mirroring the paper's fixed allocation (Table I: "8-bit
/// storage space"; §VI-A: "1 KB for off-chain storage").
class TinyStorage {
 public:
  /// `byte_limit == 0` means unbounded (the Ethereum-profile convention
  /// used across VmConfig limits).
  explicit TinyStorage(std::size_t byte_limit = 1024)
      : slot_limit_(byte_limit == 0 ? SIZE_MAX : byte_limit / 32) {}

  [[nodiscard]] U256 load(const U256& key) const {
    const auto it = slots_.find(truncate(key));
    return it == slots_.end() ? U256{} : it->second;
  }
  /// False when the slot budget is exhausted by a new key.
  [[nodiscard]] bool store(const U256& key, const U256& value) {
    const std::uint8_t k = truncate(key);
    const auto it = slots_.find(k);
    if (it != slots_.end()) {
      if (value.is_zero()) {
        slots_.erase(it);
      } else {
        it->second = value;
      }
      return true;
    }
    if (value.is_zero()) return true;
    if (slots_.size() >= slot_limit_) return false;
    slots_.emplace(k, value);
    return true;
  }
  [[nodiscard]] std::size_t used_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t slot_limit() const { return slot_limit_; }
  [[nodiscard]] const std::map<std::uint8_t, U256>& slots() const {
    return slots_;
  }

  static std::uint8_t truncate(const U256& key) {
    return static_cast<std::uint8_t>(key.limb(0) & 0xFF);
  }

 private:
  std::map<std::uint8_t, U256> slots_;
  std::size_t slot_limit_;
};

}  // namespace tinyevm::evm
