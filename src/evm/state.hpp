// VM state containers: operand stack, byte-addressed memory, and the two
// storage flavours (256-bit Ethereum keys vs TinyEVM's 8-bit / 1 KB
// side-chain storage, paper Table I).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "u256/u256.hpp"

namespace tinyevm::evm {

using Bytes = std::vector<std::uint8_t>;

/// Operand stack with a configurable element limit (Ethereum: 1024 elements;
/// TinyEVM: 3 KB = 96 elements, paper §VI-A). Tracks the maximum stack
/// pointer reached, which Figure 3c reports per contract.
class Stack {
 public:
  explicit Stack(std::size_t limit) : limit_(limit) { data_.reserve(64); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t limit() const { return limit_; }
  [[nodiscard]] std::size_t max_pointer() const { return max_pointer_; }

  /// False on overflow.
  [[nodiscard]] bool push(const U256& v) {
    if (data_.size() >= limit_) return false;
    data_.push_back(v);
    max_pointer_ = std::max(max_pointer_, data_.size());
    return true;
  }
  /// Nullopt on underflow.
  std::optional<U256> pop() {
    if (data_.empty()) return std::nullopt;
    U256 v = data_.back();
    data_.pop_back();
    return v;
  }
  /// Peek at depth n from the top (0 == top); nullopt if out of range.
  [[nodiscard]] std::optional<U256> peek(std::size_t n = 0) const {
    if (n >= data_.size()) return std::nullopt;
    return data_[data_.size() - 1 - n];
  }
  /// DUPn: duplicate the n-th item (1-based) onto the top.
  [[nodiscard]] bool dup(unsigned n) {
    if (n == 0 || n > data_.size()) return false;
    return push(data_[data_.size() - n]);
  }
  /// SWAPn: exchange top with the (n+1)-th item (1-based n).
  [[nodiscard]] bool swap(unsigned n) {
    if (n == 0 || n + 1 > data_.size()) return false;
    std::swap(data_.back(), data_[data_.size() - 1 - n]);
    return true;
  }

 private:
  std::vector<U256> data_;
  std::size_t limit_;
  std::size_t max_pointer_ = 0;
};

/// Byte-addressed, zero-initialized, word-expanding memory. A non-zero
/// `limit` caps growth (TinyEVM: 8 KB); Ethereum-mode growth is bounded by
/// gas instead. Peak size feeds the Figure 3a/3b memory-usage statistics.
class Memory {
 public:
  explicit Memory(std::size_t limit) : limit_(limit) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t peak() const { return data_.size(); }

  /// Grows to cover [offset, offset+len) rounded up to 32-byte words.
  /// False when the growth would exceed the configured limit.
  [[nodiscard]] bool expand(std::uint64_t offset, std::uint64_t len) {
    if (len == 0) return true;
    const std::uint64_t end = offset + len;
    if (end < offset) return false;  // address overflow
    const std::uint64_t words = (end + 31) / 32;
    const std::uint64_t target = words * 32;
    if (limit_ != 0 && target > limit_) return false;
    if (target > data_.size()) data_.resize(target, 0);
    return true;
  }

  [[nodiscard]] U256 load_word(std::uint64_t offset) const {
    std::array<std::uint8_t, 32> buf{};
    for (unsigned i = 0; i < 32; ++i) {
      if (offset + i < data_.size()) buf[i] = data_[offset + i];
    }
    return U256::from_word(buf);
  }
  void store_word(std::uint64_t offset, const U256& v) {
    const auto w = v.to_word();
    std::copy(w.begin(), w.end(), data_.begin() + static_cast<long>(offset));
  }
  void store_byte(std::uint64_t offset, std::uint8_t b) { data_[offset] = b; }
  /// Copies `src` into memory, zero-filling when src is shorter than len
  /// (EVM *COPY semantics).
  void store_bytes(std::uint64_t offset, std::span<const std::uint8_t> src,
                   std::uint64_t src_offset, std::uint64_t len) {
    for (std::uint64_t i = 0; i < len; ++i) {
      const std::uint64_t s = src_offset + i;
      data_[offset + i] = s < src.size() ? src[s] : 0;
    }
  }
  [[nodiscard]] Bytes read(std::uint64_t offset, std::uint64_t len) const {
    Bytes out(len, 0);
    for (std::uint64_t i = 0; i < len; ++i) {
      if (offset + i < data_.size()) out[i] = data_[offset + i];
    }
    return out;
  }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return data_; }

 private:
  Bytes data_;
  std::size_t limit_;
};

/// TinyEVM side-chain storage: keys truncated to 8 bits (256 slots) with a
/// 1 KB byte budget — 32 words of 32 bytes. SSTORE beyond the budget fails
/// the execution, mirroring the paper's fixed allocation (Table I: "8-bit
/// storage space"; §VI-A: "1 KB for off-chain storage").
class TinyStorage {
 public:
  /// `byte_limit == 0` means unbounded (the Ethereum-profile convention
  /// used across VmConfig limits).
  explicit TinyStorage(std::size_t byte_limit = 1024)
      : slot_limit_(byte_limit == 0 ? SIZE_MAX : byte_limit / 32) {}

  [[nodiscard]] U256 load(const U256& key) const {
    const auto it = slots_.find(truncate(key));
    return it == slots_.end() ? U256{} : it->second;
  }
  /// False when the slot budget is exhausted by a new key.
  [[nodiscard]] bool store(const U256& key, const U256& value) {
    const std::uint8_t k = truncate(key);
    const auto it = slots_.find(k);
    if (it != slots_.end()) {
      if (value.is_zero()) {
        slots_.erase(it);
      } else {
        it->second = value;
      }
      return true;
    }
    if (value.is_zero()) return true;
    if (slots_.size() >= slot_limit_) return false;
    slots_.emplace(k, value);
    return true;
  }
  [[nodiscard]] std::size_t used_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t slot_limit() const { return slot_limit_; }
  [[nodiscard]] const std::map<std::uint8_t, U256>& slots() const {
    return slots_;
  }

  static std::uint8_t truncate(const U256& key) {
    return static_cast<std::uint8_t>(key.limb(0) & 0xFF);
  }

 private:
  std::map<std::uint8_t, U256> slots_;
  std::size_t slot_limit_;
};

}  // namespace tinyevm::evm
