// Host interface — everything the interpreter needs from its environment:
// account state, nested calls, logs, and (TinyEVM's extension) the sensor /
// actuator bus behind the 0x0c SENSOR opcode.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "evm/state.hpp"
#include "u256/u256.hpp"

namespace tinyevm::evm {

using Address = secp256k1::Address;

/// Block header fields exposed by the blockchain opcodes (EVM profile only;
/// the TinyEVM profile traps on these, paper Table I).
struct BlockInfo {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  Address coinbase{};
  U256 difficulty;
  std::uint64_t gas_limit = 0;
};

/// Kind of a nested call requested via CALL/CALLCODE/DELEGATECALL/STATICCALL.
enum class CallKind : std::uint8_t { Call, CallCode, DelegateCall, StaticCall };

struct CallRequest {
  CallKind kind = CallKind::Call;
  Address to{};
  Address sender{};
  U256 value;
  Bytes data;
  std::int64_t gas = 0;
  int depth = 0;
  bool is_static = false;
};

struct CallResult {
  bool success = false;
  Bytes output;
  std::int64_t gas_left = 0;
};

struct CreateRequest {
  Address sender{};
  U256 value;
  Bytes init_code;
  std::int64_t gas = 0;
  int depth = 0;
};

struct CreateResult {
  bool success = false;
  Address address{};
  std::int64_t gas_left = 0;
};

struct LogEntry {
  Address address{};
  std::vector<U256> topics;
  Bytes data;
};

/// TinyEVM SENSOR opcode request. The opcode pops (selector, parameter):
/// the selector's low bit chooses read (0) vs actuate (1) and the remaining
/// bits name the device ("details such as which sensor to use … are given
/// as options to the opcode", paper §IV-B).
struct SensorRequest {
  std::uint32_t device_id = 0;
  bool actuate = false;
  U256 parameter;
};

/// Abstract execution environment. The chain module implements it for
/// on-chain transactions; the device module implements it for off-chain
/// execution on a mote (local storage, real sensors, no block data).
class Host {
 public:
  virtual ~Host() = default;

  // -- Account state --
  virtual U256 sload(const Address& addr, const U256& key) = 0;
  /// False signals storage exhaustion (TinyEVM's 1 KB side-chain budget).
  virtual bool sstore(const Address& addr, const U256& key,
                      const U256& value) = 0;
  virtual U256 balance(const Address& addr) = 0;
  virtual Bytes code_at(const Address& addr) = 0;

  // -- Block data (EVM profile only) --
  virtual BlockInfo block_info() = 0;
  virtual Hash256 block_hash(std::uint64_t number) = 0;

  // -- Nested execution --
  virtual CallResult call(const CallRequest& req) = 0;
  virtual CreateResult create(const CreateRequest& req) = 0;

  // -- Effects --
  virtual void emit_log(LogEntry entry) = 0;
  virtual void self_destruct(const Address& addr,
                             const Address& beneficiary) = 0;

  // -- IoT (TinyEVM profile) --
  /// Nullopt when the device does not exist or the read fails; failure
  /// aborts the executing contract.
  virtual std::optional<U256> sensor_access(const SensorRequest& req) = 0;
};

/// A Host base with neutral defaults so concrete hosts override only what
/// their environment supports.
class NullHost : public Host {
 public:
  U256 sload(const Address&, const U256&) override { return U256{}; }
  bool sstore(const Address&, const U256&, const U256&) override {
    return true;
  }
  U256 balance(const Address&) override { return U256{}; }
  Bytes code_at(const Address&) override { return {}; }
  BlockInfo block_info() override { return {}; }
  Hash256 block_hash(std::uint64_t) override { return {}; }
  CallResult call(const CallRequest&) override { return {}; }
  CreateResult create(const CreateRequest&) override { return {}; }
  void emit_log(LogEntry) override {}
  void self_destruct(const Address&, const Address&) override {}
  std::optional<U256> sensor_access(const SensorRequest&) override {
    return std::nullopt;
  }
};

}  // namespace tinyevm::evm
