// Pre-decoded instruction streams.
//
// The token-threaded interpreter (vm.cpp) decodes raw bytecode on every
// execution: PUSH immediates are reassembled byte-by-byte, jump targets
// re-validated against a bitmap rebuilt per run, and every code byte goes
// through the 256-entry dispatch table. Off-chain rounds re-execute the
// same small contracts thousands of times, so this module pays that
// analysis once: `translate()` lowers bytecode into a dense array of
// `DecodedInst` with immediates materialized as U256, JUMPDEST validity
// resolved into direct instruction indices, the per-opcode static gas /
// MCU-cycle model folded in at translate time, and a peephole pass that
// fuses adjacent pairs (PUSH+binop, DUP+binop, SWAP1+binop, PUSH+JUMP,
// PUSH+JUMPI) into superinstructions. The translation is immutable and
// shared across executions through the per-code-hash LRU in
// code_cache.hpp.
//
// Fusion contract: a fused pair accounts gas/cycles/ops and the transient
// stack high-water *exactly* as if both opcodes executed separately, and
// falls back to executing only the first opcode when the second would trip
// gas, the watchdog, or a stack limit — the second instruction stays in
// the stream as the fallback continuation, so failure points are
// bit-identical to unfused execution (tests/evm_dispatch_test.cpp holds
// the raw and pre-decoded paths to identical results).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "evm/opcodes.hpp"
#include "u256/u256.hpp"

namespace tinyevm::evm {

// Every executable action the interpreter knows, one label each. The first
// two entries are the failure routes the dispatch prologue short-circuits
// (invalid byte / profile-forbidden opcode); they must stay at ordinals 0
// and 1. PUSH/DUP/SWAP/LOG families collapse to one handler with the
// family index carried in the `aux` slot. The trailing five entries are
// the superinstructions only the translator emits — the raw dispatch
// table never maps a code byte to them.
#define TINYEVM_HANDLER_LIST(X)                                              \
  X(Undefined) X(Forbidden)                                                  \
  X(Stop) X(Add) X(Mul) X(Sub) X(Div) X(Sdiv) X(Mod) X(Smod) X(AddMod)       \
  X(MulMod) X(Exp) X(SignExtend) X(Lt) X(Gt) X(Slt) X(Sgt) X(Eq) X(IsZero)   \
  X(And) X(Or) X(Xor) X(Not) X(Byte) X(Shl) X(Shr) X(Sar) X(Sensor) X(Sha3)  \
  X(Address) X(Balance) X(Origin) X(Caller) X(CallValue) X(CallDataLoad)     \
  X(CallDataSize) X(CallDataCopy) X(CodeSize) X(CodeCopy) X(GasPrice)        \
  X(ExtCodeSize) X(ExtCodeCopy) X(ReturnDataSize) X(ReturnDataCopy)          \
  X(BlockHash) X(Coinbase) X(Timestamp) X(Number) X(Difficulty) X(GasLimit)  \
  X(Pop) X(MLoad) X(MStore) X(MStore8) X(SLoad) X(SStore) X(Jump) X(JumpI)   \
  X(Pc) X(MSize) X(Gas) X(JumpDest)                                          \
  X(Push) X(Dup) X(Swap) X(Log)                                              \
  X(Create) X(Call) X(CallCode) X(DelegateCall) X(StaticCall) X(Return)      \
  X(Revert) X(Invalid) X(SelfDestruct)                                       \
  X(PushBin) X(DupBin) X(SwapBin) X(PushJump) X(PushJumpI)

enum class Handler : std::uint8_t {
#define TINYEVM_H_ENUM(name) name,
  TINYEVM_HANDLER_LIST(TINYEVM_H_ENUM)
#undef TINYEVM_H_ENUM
};

/// Maps a raw code byte to its handler (ignoring profile validity, which
/// `classify()` decides). Shared by the raw dispatch-table builder and the
/// translator so both agree byte-for-byte on execution semantics.
[[nodiscard]] Handler exec_handler(std::uint8_t op);

/// Sentinel for "no jump target here" in DecodedProgram::jump_map and
/// DecodedInst::target.
inline constexpr std::uint32_t kNoJumpTarget = 0xFFFF'FFFFu;

/// One decoded instruction. 56 bytes; the PUSH immediate is materialized,
/// the static gas / MCU-cycle model folded, and for fused pairs the second
/// opcode's accounting rides along in the *2 fields.
struct DecodedInst {
  Handler handler = Handler::Undefined;
  std::uint8_t aux = 0;       ///< PUSH width / DUP-SWAP depth / LOG topics
  std::uint8_t aux2 = 0;      ///< fused pair: second opcode's Handler
  std::uint16_t gas = 0;      ///< static gas, first opcode
  std::uint16_t gas2 = 0;     ///< static gas, fused second opcode
  std::uint32_t cycles = 0;   ///< MCU cycles, first opcode
  std::uint32_t cycles2 = 0;  ///< MCU cycles, fused second opcode
  std::uint32_t pc = 0;       ///< byte offset of this opcode in the code
  /// PushJump/PushJumpI: resolved target instruction index, or
  /// kNoJumpTarget when the immediate is not a valid JUMPDEST (the fused
  /// handler then fails InvalidJump exactly where the raw path would).
  std::uint32_t target = kNoJumpTarget;
  U256 imm;                   ///< PUSH immediate, zero-padded past code end
};

/// Summary of a provably failure-free instruction run starting right
/// after a block leader, computed by the static analyzer
/// (analysis.hpp::attach_elide_spans). When one entry test passes —
/// enough stack room, enough gas, watchdog clear of the whole run — the
/// interpreter bulk-charges the summary and executes the run with
/// per-instruction checks compiled out; when it fails, nothing happens
/// and the checked handlers reproduce the exact failure point.
/// ElideSpan::tail values: the block-terminating jump a span may swallow
/// when its target is statically resolved — a fused PUSH+JUMP/JUMPI pair,
/// or a plain JUMP/JUMPI whose operand the translate-time constant
/// dataflow proved (analysis.hpp::analyze_for_translation). A jump to an
/// invalid or unknown destination can fail, so it stays on the checked
/// path.
inline constexpr std::uint8_t kSpanTailNone = 0;
inline constexpr std::uint8_t kSpanTailJump = 1;      ///< PUSH+JUMP
inline constexpr std::uint8_t kSpanTailJumpI = 2;     ///< PUSH+JUMPI
inline constexpr std::uint8_t kSpanTailDynJump = 3;   ///< resolved JUMP
inline constexpr std::uint8_t kSpanTailDynJumpI = 4;  ///< resolved JUMPI

/// Set in a JUMPDEST instruction's otherwise-unused `aux2` by
/// analyze_for_translation() when its block is unreachable on the resolved
/// CFG: dead leaders anchor no elide span. jump_map keeps the destination
/// valid — a checked dynamic jump that lands there (impossible if the
/// analysis is sound, trivially possible for the fuzzer's hand-built
/// streams) executes exactly as before.
inline constexpr std::uint8_t kJumpDestDeadFlag = 1;

struct ElideSpan {
  std::uint32_t first = 0;        ///< first instruction of the run
  std::uint32_t count = 0;        ///< body stream slots (fused pairs: 2)
  std::uint32_t ops = 0;          ///< watchdog charge (fused pairs: 2)
  std::uint64_t static_gas = 0;   ///< summed static gas of the run
  std::uint64_t cycles = 0;       ///< summed MCU-cycle model
  std::uint16_t stack_require = 0;  ///< min entry height (underflow proof)
  std::uint16_t stack_peak = 0;   ///< max growth above entry (overflow)
  /// kSpanTail*: when not kSpanTailNone, the fused jump at
  /// insts[first + count] (fallback slot right after) executes inside the
  /// span too — its target is statically valid and ops/static_gas/cycles/
  /// stack_* above already include both halves of the pair, so a loop's
  /// whole body block runs from one entry test, back edge included.
  std::uint8_t tail = kSpanTailNone;
};

/// The immutable result of translating one bytecode blob under one set of
/// profile flags. Executions never mutate it, so one translation is safely
/// shared across concurrent Vm instances.
struct DecodedProgram {
  std::vector<DecodedInst> insts;
  /// Byte pc -> instruction index for every JUMPDEST byte outside PUSH
  /// immediates (the same linear-scan rule as CodeAnalysis); kNoJumpTarget
  /// elsewhere. Sized to the code, so a dynamic JUMP is one bounds check
  /// plus one load.
  std::vector<std::uint32_t> jump_map;
  /// Check-elision summaries, one per block leader with a long-enough
  /// elidable run. JUMPDEST instructions carry their span's index in the
  /// otherwise-unused `target` field; the entry block's rides here. Pure
  /// data derived from the profile-keyed translation, so the cache key is
  /// unchanged.
  std::vector<ElideSpan> spans;
  std::uint32_t entry_span = kNoJumpTarget;
  std::size_t code_size = 0;

  /// Translate-time dataflow results (analysis.hpp), aggregated by the
  /// translation cache into CodeCache::Stats::analysis.
  struct AnalysisSummary {
    std::uint32_t resolved_jumps = 0;    ///< dynamic exits made static
    std::uint32_t unresolved_jumps = 0;  ///< still every-JUMPDEST
    std::uint32_t dead_blocks = 0;       ///< unreachable on the resolved CFG
    std::uint32_t dead_slots = 0;        ///< stream slots in dead blocks
    std::uint32_t span_slots = 0;        ///< slots covered by elide spans
  } analysis;

  /// Approximate resident footprint, the unit of the cache's byte cap.
  [[nodiscard]] std::size_t byte_size() const {
    return sizeof(DecodedProgram) + insts.capacity() * sizeof(DecodedInst) +
           jump_map.capacity() * sizeof(std::uint32_t) +
           spans.capacity() * sizeof(ElideSpan);
  }
};

/// The profile flags that change which bytes are executable — and thus the
/// translation. Part of the cache key: the same code deployed under the
/// TinyEVM and Ethereum profiles yields two distinct translations.
struct TranslationProfile {
  bool tiny_profile = true;
  bool iot_opcodes = true;
  bool block_opcodes = false;

  [[nodiscard]] std::uint8_t key() const {
    return static_cast<std::uint8_t>((tiny_profile ? 1 : 0) |
                                     (iot_opcodes ? 2 : 0) |
                                     (block_opcodes ? 4 : 0));
  }
};

/// One-time lowering of raw bytecode to a decoded instruction stream.
[[nodiscard]] DecodedProgram translate(std::span<const std::uint8_t> code,
                                       const TranslationProfile& profile);

/// Builds a PUSH immediate straight from code bytes into limbs — no
/// 32-byte staging buffer. Bytes past the end of code read as zero. Used
/// by the raw interpreter loop per execution and by the translator once.
inline U256 load_push(const std::uint8_t* p, std::uint64_t avail,
                      unsigned n) {
  std::uint64_t limbs[4] = {0, 0, 0, 0};
  for (unsigned j = 0; j < n; ++j) {
    const std::uint64_t b = j < avail ? p[j] : 0;
    const unsigned bitpos = 8 * (n - 1 - j);
    limbs[bitpos / 64] |= b << (bitpos % 64);
  }
  return U256{limbs[3], limbs[2], limbs[1], limbs[0]};
}

/// True for the binary operators the peephole pass may fuse behind a
/// PUSH/DUP/SWAP1: exactly the set with static-only gas whose handlers run
/// without host or memory side effects.
[[nodiscard]] bool is_fusible_bin(Handler h);

/// Applies a fused binary operator: `a` holds the first operand (the
/// would-be stack top), `s` the second; the result is left in `a`. Each
/// case mirrors the interpreter's standalone handler bit-for-bit.
inline void apply_fused_bin(Handler h, U256& a, const U256& s) {
  switch (h) {
    case Handler::Add: a.add_assign(s); break;
    case Handler::Mul: a.mul_assign(s); break;
    case Handler::Sub: a.sub_assign(s); break;
    case Handler::Div: a = a / s; break;
    case Handler::Sdiv: a = U256::sdiv(a, s); break;
    case Handler::Mod: a = a % s; break;
    case Handler::Smod: a = U256::smod(a, s); break;
    case Handler::Lt: a = U256{a < s ? 1ULL : 0ULL}; break;
    case Handler::Gt: a = U256{a > s ? 1ULL : 0ULL}; break;
    case Handler::Slt: a = U256{U256::slt(a, s) ? 1ULL : 0ULL}; break;
    case Handler::Sgt: a = U256{U256::sgt(a, s) ? 1ULL : 0ULL}; break;
    case Handler::Eq: a = U256{a == s ? 1ULL : 0ULL}; break;
    case Handler::And: a.and_assign(s); break;
    case Handler::Or: a.or_assign(s); break;
    case Handler::Xor: a.xor_assign(s); break;
    case Handler::Byte: a = U256::byte(a, s); break;
    case Handler::Shl: {
      const bool in_range = a.fits_u64() && a.as_u64() < 256;
      const unsigned n = static_cast<unsigned>(a.as_u64());
      if (in_range) {
        a = s;
        a.shl_assign(n);
      } else {
        a = U256{};
      }
      break;
    }
    case Handler::Shr: {
      const bool in_range = a.fits_u64() && a.as_u64() < 256;
      const unsigned n = static_cast<unsigned>(a.as_u64());
      if (in_range) {
        a = s;
        a.shr_assign(n);
      } else {
        a = U256{};
      }
      break;
    }
    case Handler::Sar: a = U256::sar(a, s); break;
    case Handler::SignExtend: a = U256::signextend(a, s); break;
    default: break;  // translator never emits other operators here
  }
}

}  // namespace tinyevm::evm
