#include "rlp/rlp.hpp"

#include <stdexcept>

namespace tinyevm::rlp {
namespace {

void append_length(Bytes& out, std::size_t len, std::uint8_t short_base,
                   std::uint8_t long_base) {
  if (len <= 55) {
    out.push_back(static_cast<std::uint8_t>(short_base + len));
    return;
  }
  Bytes len_bytes;
  for (std::size_t v = len; v != 0; v >>= 8) {
    len_bytes.insert(len_bytes.begin(), static_cast<std::uint8_t>(v & 0xFF));
  }
  out.push_back(static_cast<std::uint8_t>(long_base + len_bytes.size()));
  out.insert(out.end(), len_bytes.begin(), len_bytes.end());
}

void encode_into(const Item& item, Bytes& out) {
  if (!item.is_list()) {
    const Bytes& b = item.as_bytes();
    if (b.size() == 1 && b[0] < 0x80) {
      out.push_back(b[0]);
      return;
    }
    append_length(out, b.size(), 0x80, 0xB7);
    out.insert(out.end(), b.begin(), b.end());
    return;
  }
  Bytes payload;
  for (const Item& child : item.as_list()) {
    encode_into(child, payload);
  }
  append_length(out, payload.size(), 0xC0, 0xF7);
  out.insert(out.end(), payload.begin(), payload.end());
}

struct Decoder {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[nodiscard]] bool eof() const { return pos >= data.size(); }

  std::optional<std::size_t> read_long_length(unsigned len_of_len) {
    if (len_of_len == 0 || len_of_len > 8) return std::nullopt;
    if (pos + len_of_len > data.size()) return std::nullopt;
    if (data[pos] == 0) return std::nullopt;  // non-minimal length
    std::size_t len = 0;
    for (unsigned i = 0; i < len_of_len; ++i) {
      len = (len << 8) | data[pos++];
    }
    if (len <= 55) return std::nullopt;  // should have used short form
    return len;
  }

  std::optional<Item> decode_item() {
    if (eof()) return std::nullopt;
    const std::uint8_t prefix = data[pos++];
    if (prefix < 0x80) {
      return Item::bytes(Bytes{prefix});
    }
    if (prefix <= 0xB7) {
      const std::size_t len = prefix - 0x80;
      if (pos + len > data.size()) return std::nullopt;
      Bytes b{data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + len)};
      pos += len;
      if (b.size() == 1 && b[0] < 0x80) return std::nullopt;  // non-canonical
      return Item::bytes(std::move(b));
    }
    if (prefix <= 0xBF) {
      const auto len = read_long_length(prefix - 0xB7);
      if (!len || pos + *len > data.size()) return std::nullopt;
      Bytes b{data.begin() + static_cast<std::ptrdiff_t>(pos),
              data.begin() + static_cast<std::ptrdiff_t>(pos + *len)};
      pos += *len;
      return Item::bytes(std::move(b));
    }
    // List forms.
    std::size_t payload_len;
    if (prefix <= 0xF7) {
      payload_len = prefix - 0xC0;
    } else {
      const auto len = read_long_length(prefix - 0xF7);
      if (!len) return std::nullopt;
      payload_len = *len;
    }
    if (pos + payload_len > data.size()) return std::nullopt;
    const std::size_t end = pos + payload_len;
    std::vector<Item> children;
    while (pos < end) {
      auto child = decode_item();
      if (!child || pos > end) return std::nullopt;
      children.push_back(std::move(*child));
    }
    if (pos != end) return std::nullopt;
    return Item::list(std::move(children));
  }
};

}  // namespace

Item Item::string(std::string_view s) {
  return Item{Bytes{s.begin(), s.end()}};
}

Item Item::quantity(const U256& v) {
  const auto minimal = v.to_minimal_bytes();
  return Item{Bytes{minimal.begin(), minimal.end()}};
}

U256 Item::as_quantity() const {
  const Bytes& b = as_bytes();
  if (b.size() > 32) {
    throw std::invalid_argument("RLP quantity longer than 32 bytes");
  }
  if (!b.empty() && b[0] == 0) {
    throw std::invalid_argument("RLP quantity with leading zero");
  }
  return U256::from_bytes(b);
}

Bytes encode(const Item& item) {
  Bytes out;
  encode_into(item, out);
  return out;
}

std::optional<Item> decode(std::span<const std::uint8_t> data) {
  Decoder d{data};
  auto item = d.decode_item();
  if (!item || d.pos != data.size()) return std::nullopt;
  return item;
}

}  // namespace tinyevm::rlp
