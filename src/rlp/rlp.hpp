// Recursive Length Prefix (RLP) serialization, Ethereum's canonical wire
// format. Used for transaction/state encoding on the simulated main chain
// and for hashing channel states into the side-chain log.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "u256/u256.hpp"

namespace tinyevm::rlp {

using Bytes = std::vector<std::uint8_t>;

/// An RLP item is either a byte string or a list of items.
struct Item {
  std::variant<Bytes, std::vector<Item>> value;

  static Item bytes(Bytes b) { return Item{std::move(b)}; }
  static Item bytes(std::span<const std::uint8_t> b) {
    return Item{Bytes{b.begin(), b.end()}};
  }
  static Item string(std::string_view s);
  /// Minimal big-endian quantity encoding (no leading zeros; zero -> empty).
  static Item quantity(const U256& v);
  static Item quantity(std::uint64_t v) { return quantity(U256{v}); }
  static Item list(std::vector<Item> items) { return Item{std::move(items)}; }

  [[nodiscard]] bool is_list() const {
    return std::holds_alternative<std::vector<Item>>(value);
  }
  [[nodiscard]] const Bytes& as_bytes() const { return std::get<Bytes>(value); }
  [[nodiscard]] const std::vector<Item>& as_list() const {
    return std::get<std::vector<Item>>(value);
  }
  /// Interprets the byte string as a big-endian quantity (throws on lists or
  /// strings longer than 32 bytes).
  [[nodiscard]] U256 as_quantity() const;

  friend bool operator==(const Item& a, const Item& b) = default;
};

/// Encodes an item to its RLP byte representation.
[[nodiscard]] Bytes encode(const Item& item);

/// Decodes a complete RLP payload. Returns nullopt on malformed or
/// non-canonical input (trailing bytes, non-minimal lengths, single bytes
/// encoded long-form).
[[nodiscard]] std::optional<Item> decode(std::span<const std::uint8_t> data);

}  // namespace tinyevm::rlp
