#include "abi/abi.hpp"

#include <cstring>

#include "crypto/hash.hpp"

namespace tinyevm::abi {

std::array<std::uint8_t, 4> selector(std::string_view signature) {
  const Hash256 h = keccak256(signature);
  return {h[0], h[1], h[2], h[3]};
}

Encoder::Encoder(std::string_view signature) : selector_(selector(signature)) {}

Encoder& Encoder::add_uint(const U256& v) {
  slots_.push_back(Slot{v.to_word(), std::nullopt});
  return *this;
}

Encoder& Encoder::add_address(const secp256k1::Address& a) {
  Slot s;
  std::memcpy(s.head.data() + 12, a.data(), 20);
  slots_.push_back(s);
  return *this;
}

Encoder& Encoder::add_bool(bool b) { return add_uint(U256{b ? 1ULL : 0ULL}); }

Encoder& Encoder::add_bytes32(const std::array<std::uint8_t, 32>& w) {
  slots_.push_back(Slot{w, std::nullopt});
  return *this;
}

Encoder& Encoder::add_bytes(std::span<const std::uint8_t> data) {
  // Tail layout: length word followed by the payload padded to 32 bytes.
  Bytes tail(32, 0);
  const auto len = U256{data.size()}.to_word();
  std::memcpy(tail.data(), len.data(), 32);
  tail.insert(tail.end(), data.begin(), data.end());
  while (tail.size() % 32 != 0) tail.push_back(0);
  slots_.push_back(Slot{{}, std::move(tail)});
  return *this;
}

Bytes Encoder::build() const {
  Bytes out;
  if (selector_) {
    out.insert(out.end(), selector_->begin(), selector_->end());
  }
  const std::size_t head_size = slots_.size() * 32;
  std::size_t tail_offset = head_size;

  Bytes tails;
  for (const Slot& slot : slots_) {
    if (slot.tail) {
      const auto offset = U256{tail_offset}.to_word();
      out.insert(out.end(), offset.begin(), offset.end());
      tails.insert(tails.end(), slot.tail->begin(), slot.tail->end());
      tail_offset += slot.tail->size();
    } else {
      out.insert(out.end(), slot.head.begin(), slot.head.end());
    }
  }
  out.insert(out.end(), tails.begin(), tails.end());
  return out;
}

std::optional<std::array<std::uint8_t, 32>> Decoder::next_word() {
  if (head_pos_ + 32 > data_.size()) return std::nullopt;
  std::array<std::uint8_t, 32> w;
  std::memcpy(w.data(), data_.data() + head_pos_, 32);
  head_pos_ += 32;
  return w;
}

std::optional<U256> Decoder::read_uint() {
  const auto w = next_word();
  if (!w) return std::nullopt;
  return U256::from_word(*w);
}

std::optional<secp256k1::Address> Decoder::read_address() {
  const auto w = next_word();
  if (!w) return std::nullopt;
  secp256k1::Address a;
  std::memcpy(a.data(), w->data() + 12, 20);
  return a;
}

std::optional<bool> Decoder::read_bool() {
  const auto v = read_uint();
  if (!v) return std::nullopt;
  return !v->is_zero();
}

std::optional<Bytes> Decoder::read_bytes() {
  const auto offset = read_uint();
  if (!offset || !offset->fits_u64()) return std::nullopt;
  const std::uint64_t off = offset->as_u64();
  if (off + 32 > data_.size()) return std::nullopt;
  const U256 len = U256::from_bytes(data_.subspan(off, 32));
  if (!len.fits_u64()) return std::nullopt;
  const std::uint64_t n = len.as_u64();
  if (off + 32 + n > data_.size()) return std::nullopt;
  const auto payload = data_.subspan(off + 32, n);
  return Bytes{payload.begin(), payload.end()};
}

}  // namespace tinyevm::abi
