// Minimal Solidity ABI encoding — function selectors plus the static types
// (uint256, address, bytes32, bool) and dynamic `bytes` used by the channel
// message formats and the examples. This is the subset a TinyEVM mote needs
// to call the on-chain Template contract and to format off-chain payments.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/secp256k1.hpp"
#include "u256/u256.hpp"

namespace tinyevm::abi {

using Bytes = std::vector<std::uint8_t>;

/// First 4 bytes of keccak256 of the canonical signature, e.g.
/// "close(uint256,bytes)".
[[nodiscard]] std::array<std::uint8_t, 4> selector(std::string_view signature);

/// Incremental call-data builder. Static arguments are appended in order;
/// dynamic `bytes` arguments are collected and laid out with offsets in the
/// standard head/tail form when `build()` is called.
class Encoder {
 public:
  explicit Encoder(std::string_view signature);
  /// Encoder without a selector (for constructor arguments).
  Encoder() = default;

  Encoder& add_uint(const U256& v);
  Encoder& add_address(const secp256k1::Address& a);
  Encoder& add_bool(bool b);
  Encoder& add_bytes32(const std::array<std::uint8_t, 32>& w);
  Encoder& add_bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] Bytes build() const;

 private:
  struct Slot {
    std::array<std::uint8_t, 32> head{};  // static value or offset placeholder
    std::optional<Bytes> tail;            // set for dynamic arguments
  };
  std::optional<std::array<std::uint8_t, 4>> selector_;
  std::vector<Slot> slots_;
};

/// Cursor-style decoder for return data / call data (after the selector).
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<U256> read_uint();
  std::optional<secp256k1::Address> read_address();
  std::optional<bool> read_bool();
  /// Follows the head offset to read a dynamic `bytes` value.
  std::optional<Bytes> read_bytes();

 private:
  std::optional<std::array<std::uint8_t, 32>> next_word();

  std::span<const std::uint8_t> data_;
  std::size_t head_pos_ = 0;
};

}  // namespace tinyevm::abi
