// 256-bit unsigned integer arithmetic with EVM semantics.
//
// The EVM is a 256-bit word machine; TinyEVM keeps the word size for bytecode
// compatibility and emulates it on 32/64-bit hardware (paper §IV-B). This
// module is that emulation layer: wrapping add/sub/mul, EVM-style div/mod
// (x/0 == 0), signed variants via two's complement, 512-bit intermediates for
// ADDMOD/MULMOD, and the bit-level ops (BYTE, SHL, SHR, SAR, SIGNEXTEND).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>

namespace tinyevm {

namespace detail {
/// a + b + carry -> sum; carry_out through `carry`.
inline std::uint64_t addc(std::uint64_t a, std::uint64_t b,
                          std::uint64_t& carry) {
  const auto s = static_cast<unsigned __int128>(a) + b + carry;
  carry = static_cast<std::uint64_t>(s >> 64);
  return static_cast<std::uint64_t>(s);
}
/// a - b - borrow -> diff; borrow_out through `borrow`.
inline std::uint64_t subb(std::uint64_t a, std::uint64_t b,
                          std::uint64_t& borrow) {
  const auto d = static_cast<unsigned __int128>(a) - b - borrow;
  borrow = (d >> 64) != 0 ? 1 : 0;
  return static_cast<std::uint64_t>(d);
}
}  // namespace detail

/// Unsigned 256-bit integer, little-endian limb order (limb 0 = least
/// significant 64 bits). Value semantics; all operations are total.
class U256 {
 public:
  constexpr U256() = default;
  constexpr U256(std::uint64_t v) : limbs_{v, 0, 0, 0} {}  // NOLINT(google-explicit-constructor)
  constexpr U256(std::uint64_t l3, std::uint64_t l2, std::uint64_t l1,
                 std::uint64_t l0)
      : limbs_{l0, l1, l2, l3} {}

  /// Parses "0x"-prefixed or bare hex. Returns nullopt on bad input or
  /// overflow (more than 64 hex digits).
  static std::optional<U256> from_hex(std::string_view hex);

  /// Big-endian bytes, at most 32. Shorter inputs are left-padded with zero.
  static U256 from_bytes(std::span<const std::uint8_t> be);

  /// Exact 32-byte big-endian word (EVM word layout).
  static U256 from_word(const std::array<std::uint8_t, 32>& word) {
    return from_bytes(word);
  }

  static constexpr U256 max() {
    return U256{~0ULL, ~0ULL, ~0ULL, ~0ULL};
  }
  /// 2^255 — the sign bit mask for signed interpretation.
  static constexpr U256 sign_bit() { return U256{1ULL << 63, 0, 0, 0}; }

  [[nodiscard]] constexpr std::uint64_t limb(unsigned i) const {
    return limbs_[i];
  }
  [[nodiscard]] constexpr bool is_zero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  /// True when the value fits in a single 64-bit limb.
  [[nodiscard]] constexpr bool fits_u64() const {
    return (limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  [[nodiscard]] constexpr std::uint64_t as_u64() const { return limbs_[0]; }
  /// Signed interpretation: true when bit 255 is set.
  [[nodiscard]] constexpr bool is_negative() const {
    return (limbs_[3] >> 63) != 0;
  }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] unsigned bit_length() const;
  [[nodiscard]] bool bit(unsigned i) const {
    return i < 256 && ((limbs_[i / 64] >> (i % 64)) & 1U) != 0;
  }
  /// Number of significant bytes (0 for zero).
  [[nodiscard]] unsigned byte_length() const {
    return (bit_length() + 7) / 8;
  }

  /// 32-byte big-endian EVM word.
  [[nodiscard]] std::array<std::uint8_t, 32> to_word() const;
  /// Minimal big-endian byte string (empty for zero) — RLP quantity form.
  [[nodiscard]] std::basic_string<std::uint8_t> to_minimal_bytes() const;
  /// "0x"-prefixed lowercase hex without leading zeros ("0x0" for zero).
  [[nodiscard]] std::string to_hex() const;
  /// Decimal string.
  [[nodiscard]] std::string to_decimal() const;

  // --- Wrapping arithmetic (mod 2^256), as the EVM defines it. ---
  friend U256 operator+(const U256& a, const U256& b);
  friend U256 operator-(const U256& a, const U256& b);
  friend U256 operator*(const U256& a, const U256& b);
  /// EVM DIV: x / 0 == 0.
  friend U256 operator/(const U256& a, const U256& b);
  /// EVM MOD: x % 0 == 0.
  friend U256 operator%(const U256& a, const U256& b);

  // --- In-place mutating ops (interpreter hot path). ---
  // The token-threaded dispatcher rewrites the second stack operand in
  // place, so these avoid the value-semantics temporaries of the friend
  // operators. All are aliasing-safe (`x.add_assign(x)` works). The
  // arithmetic ones are defined inline here — the interpreter lives in a
  // different translation unit and an out-of-line call per ADD costs more
  // than the add itself.
  void add_assign(const U256& o) {           ///< *this += o
    std::uint64_t carry = 0;
    for (unsigned i = 0; i < 4; ++i) {
      limbs_[i] = detail::addc(limbs_[i], o.limbs_[i], carry);
    }
  }
  void sub_assign(const U256& o) {           ///< *this -= o
    std::uint64_t borrow = 0;
    for (unsigned i = 0; i < 4; ++i) {
      limbs_[i] = detail::subb(limbs_[i], o.limbs_[i], borrow);
    }
  }
  void rsub_assign(const U256& a) {          ///< *this = a - *this
    std::uint64_t borrow = 0;
    for (unsigned i = 0; i < 4; ++i) {
      limbs_[i] = detail::subb(a.limbs_[i], limbs_[i], borrow);
    }
  }
  void mul_assign(const U256& o) {           ///< *this *= o (mod 2^256)
    // Unrolled column-wise schoolbook truncated to 4 limbs. Each column
    // sum has at most six 64-bit terms, so a 128-bit accumulator cannot
    // overflow; the top column wraps mod 2^64 by construction. Roughly 3x
    // the throughput of the row-by-row carry loop this replaces (the
    // compiler cannot untangle that loop's carry recurrence).
    using u128 = unsigned __int128;
    const std::uint64_t a0 = limbs_[0], a1 = limbs_[1], a2 = limbs_[2],
                        a3 = limbs_[3];
    const std::uint64_t b0 = o.limbs_[0], b1 = o.limbs_[1],
                        b2 = o.limbs_[2], b3 = o.limbs_[3];
    const u128 p00 = static_cast<u128>(a0) * b0;
    const u128 p01 = static_cast<u128>(a0) * b1;
    const u128 p02 = static_cast<u128>(a0) * b2;
    const u128 p10 = static_cast<u128>(a1) * b0;
    const u128 p11 = static_cast<u128>(a1) * b1;
    const u128 p20 = static_cast<u128>(a2) * b0;
    const u128 c1 = (p00 >> 64) + static_cast<std::uint64_t>(p01) +
                    static_cast<std::uint64_t>(p10);
    const u128 c2 = (c1 >> 64) + static_cast<std::uint64_t>(p01 >> 64) +
                    static_cast<std::uint64_t>(p10 >> 64) +
                    static_cast<std::uint64_t>(p02) +
                    static_cast<std::uint64_t>(p11) +
                    static_cast<std::uint64_t>(p20);
    const std::uint64_t r3 = static_cast<std::uint64_t>(c2 >> 64) +
                             static_cast<std::uint64_t>(p02 >> 64) +
                             static_cast<std::uint64_t>(p11 >> 64) +
                             static_cast<std::uint64_t>(p20 >> 64) +
                             a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0;
    limbs_ = {static_cast<std::uint64_t>(p00), static_cast<std::uint64_t>(c1),
              static_cast<std::uint64_t>(c2), r3};
  }
  void shl_assign(unsigned n);               ///< *this <<= n (n >= 256 -> 0)
  void shr_assign(unsigned n);               ///< *this >>= n (n >= 256 -> 0)
  constexpr void and_assign(const U256& o) {
    for (unsigned i = 0; i < 4; ++i) limbs_[i] &= o.limbs_[i];
  }
  constexpr void or_assign(const U256& o) {
    for (unsigned i = 0; i < 4; ++i) limbs_[i] |= o.limbs_[i];
  }
  constexpr void xor_assign(const U256& o) {
    for (unsigned i = 0; i < 4; ++i) limbs_[i] ^= o.limbs_[i];
  }
  constexpr void not_assign() {
    for (unsigned i = 0; i < 4; ++i) limbs_[i] = ~limbs_[i];
  }

  U256& operator+=(const U256& o) { add_assign(o); return *this; }
  U256& operator-=(const U256& o) { sub_assign(o); return *this; }
  U256& operator*=(const U256& o) { mul_assign(o); return *this; }

  // --- Bitwise. ---
  friend constexpr U256 operator&(const U256& a, const U256& b) {
    return U256{a.limbs_[3] & b.limbs_[3], a.limbs_[2] & b.limbs_[2],
                a.limbs_[1] & b.limbs_[1], a.limbs_[0] & b.limbs_[0]};
  }
  friend constexpr U256 operator|(const U256& a, const U256& b) {
    return U256{a.limbs_[3] | b.limbs_[3], a.limbs_[2] | b.limbs_[2],
                a.limbs_[1] | b.limbs_[1], a.limbs_[0] | b.limbs_[0]};
  }
  friend constexpr U256 operator^(const U256& a, const U256& b) {
    return U256{a.limbs_[3] ^ b.limbs_[3], a.limbs_[2] ^ b.limbs_[2],
                a.limbs_[1] ^ b.limbs_[1], a.limbs_[0] ^ b.limbs_[0]};
  }
  friend constexpr U256 operator~(const U256& a) {
    return U256{~a.limbs_[3], ~a.limbs_[2], ~a.limbs_[1], ~a.limbs_[0]};
  }
  /// Shifts of >= 256 yield zero (EVM SHL/SHR semantics).
  friend U256 operator<<(const U256& a, unsigned n);
  friend U256 operator>>(const U256& a, unsigned n);

  friend constexpr bool operator==(const U256& a, const U256& b) = default;
  friend std::strong_ordering operator<=>(const U256& a, const U256& b);

  // --- EVM-specific operations. ---
  /// Signed division (SDIV): two's complement, INT_MIN / -1 == INT_MIN.
  static U256 sdiv(const U256& a, const U256& b);
  /// Signed modulo (SMOD): result takes the sign of the dividend.
  static U256 smod(const U256& a, const U256& b);
  /// (a + b) % m with 512-bit intermediate; m == 0 yields 0.
  static U256 addmod(const U256& a, const U256& b, const U256& m);
  /// (a * b) % m with 512-bit intermediate; m == 0 yields 0.
  static U256 mulmod(const U256& a, const U256& b, const U256& m);
  /// a ** e mod 2^256 by square-and-multiply.
  static U256 exp(const U256& a, const U256& e);
  /// SIGNEXTEND: extend the sign of the byte at index `byte_index` (0 = LSB).
  static U256 signextend(const U256& byte_index, const U256& x);
  /// EVM BYTE opcode: the i-th byte counting from the most significant
  /// (i == 0 -> MSB); i >= 32 yields 0.
  static U256 byte(const U256& i, const U256& x);
  /// Arithmetic right shift (SAR); shifts >= 256 give 0 or all-ones.
  static U256 sar(const U256& shift, const U256& x);
  /// Signed comparisons (SLT / SGT).
  static bool slt(const U256& a, const U256& b);
  static bool sgt(const U256& a, const U256& b) { return slt(b, a); }

  /// Two's-complement negation.
  [[nodiscard]] U256 negate() const { return U256{} - *this; }

  /// Quotient and remainder in one pass; division by zero yields {0, 0}
  /// per EVM convention.
  static std::pair<U256, U256> divmod(const U256& a, const U256& b);

 private:
  std::array<std::uint64_t, 4> limbs_{0, 0, 0, 0};
};

/// 512-bit helper used for ADDMOD/MULMOD intermediates and as the wide
/// product in Knuth division. Minimal interface — only what U256 needs plus
/// the full product/reduction entry points exposed for testing.
class U512 {
 public:
  constexpr U512() = default;
  explicit U512(const U256& lo);

  /// Full 512-bit product of two 256-bit values (never overflows).
  static U512 mul(const U256& a, const U256& b);
  /// 512-bit sum of two 256-bit values (never overflows).
  static U512 add(const U256& a, const U256& b);
  /// this mod m (m != 0), by binary long division over 512 bits.
  [[nodiscard]] U256 mod(const U256& m) const;

  [[nodiscard]] std::uint64_t limb(unsigned i) const { return limbs_[i]; }
  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] unsigned bit_length() const;

 private:
  std::array<std::uint64_t, 8> limbs_{};
};

}  // namespace tinyevm
