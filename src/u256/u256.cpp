#include "u256/u256.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tinyevm {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

using detail::addc;
using detail::subb;

}  // namespace

std::optional<U256> U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty() || hex.size() > 64) return std::nullopt;
  U256 out;
  for (char c : hex) {
    int d = hex_digit(c);
    if (d < 0) return std::nullopt;
    out = (out << 4) | U256{static_cast<u64>(d)};
  }
  return out;
}

U256 U256::from_bytes(std::span<const std::uint8_t> be) {
  assert(be.size() <= 32);
  U256 out;
  for (std::uint8_t b : be) {
    out = (out << 8) | U256{static_cast<u64>(b)};
  }
  return out;
}

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) {
      return static_cast<unsigned>(i) * 64 +
             (64 - static_cast<unsigned>(std::countl_zero(limbs_[i])));
    }
  }
  return 0;
}

std::array<std::uint8_t, 32> U256::to_word() const {
  std::array<std::uint8_t, 32> out{};
  for (unsigned i = 0; i < 32; ++i) {
    out[31 - i] = static_cast<std::uint8_t>(limbs_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

std::basic_string<std::uint8_t> U256::to_minimal_bytes() const {
  auto word = to_word();
  unsigned skip = 0;
  while (skip < 32 && word[skip] == 0) ++skip;
  return {word.begin() + skip, word.end()};
}

std::string U256::to_hex() const {
  if (is_zero()) return "0x0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int i = 63; i >= 0; --i) {
    unsigned nibble =
        (limbs_[static_cast<unsigned>(i) / 16] >> ((static_cast<unsigned>(i) % 16) * 4)) & 0xF;
    if (!started && nibble == 0) continue;
    started = true;
    out.push_back(kDigits[nibble]);
  }
  return out;
}

std::string U256::to_decimal() const {
  if (is_zero()) return "0";
  std::string digits;
  U256 v = *this;
  const U256 ten{10};
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, ten);
    digits.push_back(static_cast<char>('0' + r.as_u64()));
    v = q;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

U256 operator+(const U256& a, const U256& b) {
  U256 r;
  u64 carry = 0;
  for (unsigned i = 0; i < 4; ++i) {
    r.limbs_[i] = addc(a.limbs_[i], b.limbs_[i], carry);
  }
  return r;
}

U256 operator-(const U256& a, const U256& b) {
  U256 r;
  u64 borrow = 0;
  for (unsigned i = 0; i < 4; ++i) {
    r.limbs_[i] = subb(a.limbs_[i], b.limbs_[i], borrow);
  }
  return r;
}

U256 operator*(const U256& a, const U256& b) {
  U256 r = a;
  r.mul_assign(b);
  return r;
}

void U256::shl_assign(unsigned n) {
  if (n == 0) return;
  if (n >= 256) {
    limbs_ = {0, 0, 0, 0};
    return;
  }
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  // Descending writes only read source limbs at or below the write index,
  // so the shift is aliasing-safe in place.
  for (int i = 3; i >= 0; --i) {
    u64 v = 0;
    const int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = limbs_[static_cast<unsigned>(src)] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= limbs_[static_cast<unsigned>(src - 1)] >> (64 - bit_shift);
      }
    }
    limbs_[static_cast<unsigned>(i)] = v;
  }
}

void U256::shr_assign(unsigned n) {
  if (n == 0) return;
  if (n >= 256) {
    limbs_ = {0, 0, 0, 0};
    return;
  }
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (unsigned i = 0; i < 4; ++i) {
    u64 v = 0;
    const unsigned src = i + limb_shift;
    if (src < 4) {
      v = limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) {
        v |= limbs_[src + 1] << (64 - bit_shift);
      }
    }
    limbs_[i] = v;
  }
}

U256 operator<<(const U256& a, unsigned n) {
  U256 r = a;
  r.shl_assign(n);
  return r;
}

U256 operator>>(const U256& a, unsigned n) {
  U256 r = a;
  r.shr_assign(n);
  return r;
}

std::strong_ordering operator<=>(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limbs_[static_cast<unsigned>(i)] != b.limbs_[static_cast<unsigned>(i)]) {
      return a.limbs_[static_cast<unsigned>(i)] < b.limbs_[static_cast<unsigned>(i)]
                 ? std::strong_ordering::less
                 : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

std::pair<U256, U256> U256::divmod(const U256& a, const U256& b) {
  if (b.is_zero()) return {U256{}, U256{}};
  if (a < b) return {U256{}, a};
  if (b.fits_u64() && a.fits_u64()) {
    return {U256{a.as_u64() / b.as_u64()}, U256{a.as_u64() % b.as_u64()}};
  }
  // Binary long division: shift divisor up to align with dividend, then
  // subtract-and-shift. At most 256 iterations; plenty fast for VM use.
  const unsigned shift = a.bit_length() - b.bit_length();
  U256 divisor = b << shift;
  U256 quotient;
  U256 remainder = a;
  for (int i = static_cast<int>(shift); i >= 0; --i) {
    if (remainder >= divisor) {
      remainder -= divisor;
      quotient = quotient | (U256{1} << static_cast<unsigned>(i));
    }
    divisor = divisor >> 1;
  }
  return {quotient, remainder};
}

U256 operator/(const U256& a, const U256& b) { return U256::divmod(a, b).first; }
U256 operator%(const U256& a, const U256& b) { return U256::divmod(a, b).second; }

U256 U256::sdiv(const U256& a, const U256& b) {
  if (b.is_zero()) return U256{};
  const bool neg_a = a.is_negative();
  const bool neg_b = b.is_negative();
  const U256 abs_a = neg_a ? a.negate() : a;
  const U256 abs_b = neg_b ? b.negate() : b;
  U256 q = abs_a / abs_b;
  return (neg_a != neg_b) ? q.negate() : q;
  // Note: INT256_MIN / -1 wraps back to INT256_MIN via negate(), matching EVM.
}

U256 U256::smod(const U256& a, const U256& b) {
  if (b.is_zero()) return U256{};
  const bool neg_a = a.is_negative();
  const U256 abs_a = neg_a ? a.negate() : a;
  const U256 abs_b = b.is_negative() ? b.negate() : b;
  U256 r = abs_a % abs_b;
  return neg_a ? r.negate() : r;
}

U256 U256::addmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256{};
  return U512::add(a, b).mod(m);
}

U256 U256::mulmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256{};
  return U512::mul(a, b).mod(m);
}

U256 U256::exp(const U256& a, const U256& e) {
  U256 result{1};
  U256 base = a;
  const unsigned bits = e.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (e.bit(i)) result *= base;
    base *= base;
  }
  return result;
}

U256 U256::signextend(const U256& byte_index, const U256& x) {
  if (!byte_index.fits_u64() || byte_index.as_u64() >= 31) return x;
  const unsigned b = static_cast<unsigned>(byte_index.as_u64());
  const unsigned sign_pos = b * 8 + 7;
  const U256 mask = (U256{1} << (sign_pos + 1)) - U256{1};
  if (x.bit(sign_pos)) {
    return x | ~mask;
  }
  return x & mask;
}

U256 U256::byte(const U256& i, const U256& x) {
  if (!i.fits_u64() || i.as_u64() >= 32) return U256{};
  const unsigned shift = (31 - static_cast<unsigned>(i.as_u64())) * 8;
  return (x >> shift) & U256{0xFF};
}

U256 U256::sar(const U256& shift, const U256& x) {
  const bool neg = x.is_negative();
  if (!shift.fits_u64() || shift.as_u64() >= 256) {
    return neg ? max() : U256{};
  }
  const unsigned n = static_cast<unsigned>(shift.as_u64());
  U256 r = x >> n;
  if (neg && n > 0) {
    r = r | (max() << (256 - n));
  }
  return r;
}

bool U256::slt(const U256& a, const U256& b) {
  const bool na = a.is_negative();
  const bool nb = b.is_negative();
  if (na != nb) return na;
  return a < b;
}

// ---- U512 ----

U512::U512(const U256& lo) {
  for (unsigned i = 0; i < 4; ++i) limbs_[i] = lo.limb(i);
}

U512 U512::mul(const U256& a, const U256& b) {
  U512 r;
  for (unsigned i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (unsigned j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.limb(i)) * b.limb(j) + r.limbs_[i + j] +
                 carry;
      r.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r.limbs_[i + 4] = carry;
  }
  return r;
}

U512 U512::add(const U256& a, const U256& b) {
  U512 r;
  u64 carry = 0;
  for (unsigned i = 0; i < 4; ++i) {
    r.limbs_[i] = addc(a.limb(i), b.limb(i), carry);
  }
  r.limbs_[4] = carry;
  return r;
}

bool U512::is_zero() const {
  for (u64 l : limbs_) {
    if (l != 0) return false;
  }
  return true;
}

unsigned U512::bit_length() const {
  for (int i = 7; i >= 0; --i) {
    if (limbs_[static_cast<unsigned>(i)] != 0) {
      return static_cast<unsigned>(i) * 64 +
             (64 - static_cast<unsigned>(
                       std::countl_zero(limbs_[static_cast<unsigned>(i)])));
    }
  }
  return 0;
}

U256 U512::mod(const U256& m) const {
  assert(!m.is_zero());
  // Binary long division over the 512-bit value: process bits from the top,
  // maintaining remainder < m (m < 2^256, so the remainder fits in U256
  // after each conditional subtraction because rem < m <= 2^256-1 implies
  // 2*rem + bit < 2^257; we keep one spare bit via careful ordering).
  U256 rem;
  const unsigned bits = bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    // rem = rem * 2 + bit(i); rem < m so rem*2+1 < 2m <= 2^257 — track the
    // potential 257th bit as `overflow`.
    const bool overflow = rem.is_negative();  // top bit set before shifting
    rem = rem << 1;
    const unsigned ui = static_cast<unsigned>(i);
    if ((limbs_[ui / 64] >> (ui % 64)) & 1U) {
      rem = rem | U256{1};
    }
    if (overflow || rem >= m) {
      rem -= m;
    }
  }
  return rem;
}

}  // namespace tinyevm
