#include "obs/metrics.hpp"

#include <algorithm>

namespace tinyevm::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    s.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : s.buckets) s.count += c;
  return s;
}

std::uint64_t Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based), then walk buckets cumulatively.
  const auto rank = static_cast<std::uint64_t>(
                        q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return upper_bound(b < kBuckets - 1 ? b : kBuckets - 2);
    }
  }
  return upper_bound(kBuckets - 2);
}

void Collection::gauge(const std::string& name, const std::string& help,
                       LabelSet labels, double value) {
  add(name, help, MetricType::Gauge, std::move(labels), value);
}

void Collection::counter(const std::string& name, const std::string& help,
                         LabelSet labels, double value) {
  add(name, help, MetricType::Counter, std::move(labels), value);
}

void Collection::add(const std::string& name, const std::string& help,
                     MetricType type, LabelSet labels, double value) {
  std::sort(labels.begin(), labels.end());
  for (MetricFamily& family : *families_) {
    if (family.name != name) continue;
    // First registration fixes the type; a mismatched collector sample
    // would corrupt the exposition, so it is dropped.
    if (family.type != type) return;
    family.samples.push_back(Sample{std::move(labels), value, {}});
    return;
  }
  MetricFamily family;
  family.name = name;
  family.help = help;
  family.type = type;
  family.samples.push_back(Sample{std::move(labels), value, {}});
  families_->push_back(std::move(family));
}

CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : id_(other.id_) {
  other.id_ = 0;
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& other) noexcept {
  if (this != &other) {
    reset();
    id_ = other.id_;
    other.id_ = 0;
  }
  return *this;
}

void CollectorHandle::reset() noexcept {
  if (id_ != 0) {
    Registry::instance().remove_collector(id_);
    id_ = 0;
  }
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

Registry::Instrument& Registry::intern(const std::string& name,
                                       const std::string& help,
                                       MetricType type, LabelSet&& labels) {
  std::sort(labels.begin(), labels.end());
  runtime::MutexLock lock(mu_);
  Family* family = nullptr;
  for (Family& f : families_) {
    if (f.name == name) {
      family = &f;
      break;
    }
  }
  if (family == nullptr) {
    families_.push_back(Family{name, help, type, {}});
    family = &families_.back();
  }
  for (Instrument& inst : family->instruments) {
    if (inst.labels == labels) return inst;
  }
  Instrument inst;
  inst.labels = std::move(labels);
  switch (type) {
    case MetricType::Counter:
      inst.counter = std::unique_ptr<Counter>(new Counter());
      break;
    case MetricType::Gauge:
      inst.gauge = std::unique_ptr<Gauge>(new Gauge());
      break;
    case MetricType::Histogram:
      inst.histogram = std::unique_ptr<Histogram>(new Histogram());
      break;
  }
  family->instruments.push_back(std::move(inst));
  return family->instruments.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           LabelSet labels) {
  return *intern(name, help, MetricType::Counter, std::move(labels)).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       LabelSet labels) {
  return *intern(name, help, MetricType::Gauge, std::move(labels)).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, LabelSet labels) {
  return *intern(name, help, MetricType::Histogram, std::move(labels))
              .histogram;
}

CollectorHandle Registry::add_collector(CollectorFn fn) {
  runtime::MutexLock lock(collectors_mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return CollectorHandle{id};
}

void Registry::remove_collector(std::uint64_t id) noexcept {
  // Taking collectors_mu_ here is what makes ~CollectorHandle a barrier:
  // once it returns, no scrape is inside (or will enter) the callback.
  runtime::MutexLock lock(collectors_mu_);
  std::erase_if(collectors_,
                [id](const auto& entry) { return entry.first == id; });
}

std::vector<MetricFamily> Registry::collect() const {
  std::vector<MetricFamily> out;
  {
    runtime::MutexLock lock(mu_);
    out.reserve(families_.size());
    for (const Family& family : families_) {
      MetricFamily mf;
      mf.name = family.name;
      mf.help = family.help;
      mf.type = family.type;
      mf.samples.reserve(family.instruments.size());
      for (const Instrument& inst : family.instruments) {
        Sample s;
        s.labels = inst.labels;
        switch (family.type) {
          case MetricType::Counter:
            s.value = static_cast<double>(inst.counter->value());
            break;
          case MetricType::Gauge:
            s.value = static_cast<double>(inst.gauge->value());
            break;
          case MetricType::Histogram:
            s.histogram = inst.histogram->snapshot();
            break;
        }
        mf.samples.push_back(std::move(s));
      }
      out.push_back(std::move(mf));
    }
  }
  // Collectors run outside mu_ (they may not create instruments, but they
  // do take subsystem locks — keep the two lock worlds disjoint).
  Collection collection;
  collection.families_ = &out;
  runtime::MutexLock lock(collectors_mu_);
  for (const auto& [id, fn] : collectors_) fn(collection);
  return out;
}

}  // namespace tinyevm::obs
