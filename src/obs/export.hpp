// Exporters over Registry::collect(): Prometheus text exposition
// (scrapeable as-is by a Prometheus server or promtool) and a structured
// JSON dump (for tooling that wants the whole scrape as one document).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tinyevm::obs {

/// Prometheus text exposition format 0.0.4: `# HELP` / `# TYPE` headers
/// per family, histogram families expanded into cumulative `_bucket`
/// series plus `_sum` / `_count`.
[[nodiscard]] std::string to_prometheus_text(
    const std::vector<MetricFamily>& families);

/// Structured JSON: {"metrics":[{"name","type","help","samples":[...]}]}.
/// Histogram samples carry non-cumulative per-bucket counts with their
/// upper bounds, plus sum/count.
[[nodiscard]] std::string to_json(const std::vector<MetricFamily>& families);

/// Convenience: scrape the process-wide registry.
[[nodiscard]] std::string prometheus_scrape();
[[nodiscard]] std::string json_scrape();

}  // namespace tinyevm::obs
