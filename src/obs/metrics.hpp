// Process-wide metrics registry (ROADMAP observability layer).
//
// Every later perf/robustness PR reports through this subsystem, so the
// hot-path contract is strict: when telemetry is disabled (the default) an
// instrumented call site costs one relaxed atomic load and a predicted
// branch; when the tree is configured with -DTINYEVM_OBS=OFF the
// instrumentation compiles out entirely. When enabled, an increment is a
// single relaxed atomic add on a cache-line-padded shard chosen per
// thread, so concurrent writers on distinct threads almost never touch
// the same line — aggregation across shards happens lazily, at scrape
// time.
//
// Three instrument kinds, mirroring the Prometheus data model:
//   * Counter   — monotone uint64 (requests served, signatures made).
//   * Gauge     — settable int64 (queue depth, open sessions).
//   * Histogram — fixed log2-bucket distribution of uint64 samples
//                 (latencies in µs); bucket upper bounds are 1, 2, 4, …,
//                 2^30, +Inf, so recording is a bit-width computation and
//                 one shard add, never a search.
//
// Instruments are interned by (name, labels): the first registration
// creates, later ones return the same object, and references stay valid
// for the process lifetime. Subsystems with pre-existing stats surfaces
// (CodeCache, ThreadPool, ChannelHub) publish them through scrape-time
// collectors instead of mirroring every update into a second counter.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/thread_annotations.hpp"

namespace tinyevm::obs {

namespace detail {
/// Runtime switch behind metrics_enabled(). Off by default: an
/// uninstrumented process stays uninstrumented until a tool/bench opts in.
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// True when instrumentation should record. Call sites guard *all*
/// telemetry work (including clock reads) behind this, so the disabled
/// path is one relaxed load; with -DTINYEVM_OBS=OFF it constant-folds to
/// false and the guarded code is dead-stripped.
inline bool metrics_enabled() noexcept {
#ifdef TINYEVM_OBS_DISABLED
  return false;
#else
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

void set_metrics_enabled(bool enabled) noexcept;

/// Sorted key/value label pairs identifying one time series within a
/// metric family, e.g. {{"engine","elided"},{"status","success"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace detail {

inline constexpr std::size_t kShards = 16;

/// One writer stripe, padded to its own cache line so concurrent threads
/// incrementing different shards never false-share.
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

/// The shard a calling thread writes to: threads are handed stripe
/// indices round-robin on first use, so up to kShards writers proceed
/// without sharing a line (beyond that, stripes are shared but still
/// just a relaxed fetch_add).
std::size_t this_thread_shard() noexcept;

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    shards_[detail::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Lazy aggregate over the shards (scrape-time, tests).
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  Counter() = default;
  std::array<detail::CounterShard, detail::kShards> shards_;
};

/// Last-written value; set/add are full writes, not per-thread stripes
/// (gauges are low-frequency: queue depths, table sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log2-bucket histogram over uint64 samples. Bucket i counts
/// samples <= 2^i for i in [0, kBuckets-2]; the last bucket is +Inf.
/// 0 lands in bucket 0 (le=1). Designed for microsecond latencies:
/// 2^30 µs ≈ 18 minutes headroom before +Inf.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Smallest i with v <= 2^i, clamped to the +Inf bucket.
  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    if (v <= 1) return 0;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v - 1));
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Upper bound of bucket i (the Prometheus `le` value); the last bucket
  /// has no finite bound.
  [[nodiscard]] static constexpr std::uint64_t upper_bound(
      std::size_t bucket) noexcept {
    return std::uint64_t{1} << bucket;
  }

  void record(std::uint64_t v) noexcept {
    if (!metrics_enabled()) return;
    auto& shard = shards_[detail::this_thread_shard()];
    shard.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Scrape-time aggregate: per-bucket counts (NOT cumulative), total
  /// sample count, and the sum of recorded values.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Value at quantile q in [0,1], resolved to its bucket upper bound
    /// (the +Inf bucket reports the last finite bound).
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

 private:
  friend class Registry;
  Histogram() = default;
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kShards> shards_;
};

enum class MetricType : std::uint8_t { Counter, Gauge, Histogram };

/// One exported sample, produced at scrape time — either from a
/// registered instrument or from a collector callback.
struct Sample {
  LabelSet labels;
  double value = 0;                       ///< counter / gauge
  Histogram::Snapshot histogram;          ///< histogram only
};

/// All samples of one metric name, as exporters consume them.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  std::vector<Sample> samples;
};

/// Passed to collector callbacks: append whole-process state (cache
/// occupancy, pool queue depth, session counts) as samples without
/// maintaining live instruments for them.
class Collection {
 public:
  void gauge(const std::string& name, const std::string& help,
             LabelSet labels, double value);
  /// Cumulative values a subsystem already counts itself (cache hits,
  /// endpoint signatures) — exported with counter semantics.
  void counter(const std::string& name, const std::string& help,
               LabelSet labels, double value);

 private:
  friend class Registry;
  void add(const std::string& name, const std::string& help, MetricType type,
           LabelSet labels, double value);
  std::vector<MetricFamily>* families_ = nullptr;
};

using CollectorFn = std::function<void(Collection&)>;

/// RAII registration of a scrape-time collector; destruction unregisters
/// and synchronizes with any in-flight scrape, so a collector capturing
/// `this` is safe to hold as the last member of the object it reads.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& other) noexcept;
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;
  ~CollectorHandle() { reset(); }
  void reset() noexcept;

 private:
  friend class Registry;
  explicit CollectorHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;  // 0 = empty
};

/// The process-wide instrument table. Lookup interns by (name, labels)
/// under a mutex — cold; hot paths hold the returned reference.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name, const std::string& help,
                   LabelSet labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               LabelSet labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       LabelSet labels = {});

  CollectorHandle add_collector(CollectorFn fn);

  /// Aggregates every instrument's shards and runs every collector.
  /// Families are ordered by first registration; samples by first
  /// registration within the family.
  [[nodiscard]] std::vector<MetricFamily> collect() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  friend class CollectorHandle;
  Registry() = default;

  struct Instrument {
    LabelSet labels;
    // Exactly one is set, matching the family type.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type;
    std::vector<Instrument> instruments;
  };

  Instrument& intern(const std::string& name, const std::string& help,
                     MetricType type, LabelSet&& labels);
  void remove_collector(std::uint64_t id) noexcept;

  mutable runtime::Mutex mu_;
  std::vector<Family> families_ GUARDED_BY(mu_);

  mutable runtime::Mutex collectors_mu_;  // held while collectors run
  std::vector<std::pair<std::uint64_t, CollectorFn>> collectors_
      GUARDED_BY(collectors_mu_);
  std::uint64_t next_collector_id_ GUARDED_BY(collectors_mu_) = 1;
};

}  // namespace tinyevm::obs
