#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>

namespace tinyevm::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t trace_now_ns() noexcept {
  // One process-wide epoch so every thread's timestamps share an origin;
  // Chrome's `ts` field is relative anyway, small numbers read better.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace detail

namespace {
/// Ring-overwrite drop count, kept outside the rings so it survives
/// re-registration.
std::atomic<std::uint64_t> g_dropped{0};
}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed: thread rings
  return *tracer;                        // outlive static teardown
}

void Tracer::enable(std::size_t ring_capacity) {
  {
    std::lock_guard lock(mu_);
    rings_.clear();
    ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
    epoch_.fetch_add(1, std::memory_order_relaxed);
    next_tid_ = 0;
    g_dropped.store(0, std::memory_order_relaxed);
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

Tracer::ThreadRing* Tracer::ring_for_this_thread() {
  // The cached pointer is invalidated whenever enable() bumps the epoch;
  // shared_ptr keeps the stale ring alive until this thread notices, so
  // the cache never dangles even across an enable() on another thread.
  struct Tls {
    std::shared_ptr<ThreadRing> ring;
    std::uint64_t epoch = 0;
  };
  thread_local Tls tls;

  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.ring && tls.epoch == epoch) return tls.ring.get();

  std::lock_guard lock(mu_);
  auto ring = std::make_shared<ThreadRing>();
  ring->tid = next_tid_++;
  ring->slots.resize(ring_capacity_);
  rings_.push_back(ring);
  tls.ring = std::move(ring);
  tls.epoch = epoch_.load(std::memory_order_relaxed);
  return tls.ring.get();
}

void Tracer::emit_event(const TraceEvent& event) {
  if (!trace_enabled()) return;
  ThreadRing* ring = ring_for_this_thread();
  // Per-ring mutex: only a dump ever competes with the owning thread, so
  // this acquisition is uncontended on the hot path (no cross-thread
  // sharing between emitters).
  std::lock_guard lock(ring->mu);
  if (ring->next >= ring->slots.size()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  ring->slots[ring->next % ring->slots.size()] = event;
  ++ring->next;
}

std::vector<std::shared_ptr<Tracer::ThreadRing>> Tracer::snapshot_rings()
    const {
  std::lock_guard lock(mu_);
  return rings_;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& ring : snapshot_rings()) {
    std::lock_guard lock(ring->mu);
    n += static_cast<std::size_t>(
        ring->next < ring->slots.size() ? ring->next : ring->slots.size());
  }
  return n;
}

std::uint64_t Tracer::dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string Tracer::chrome_trace_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[256];
  for (const auto& ring : snapshot_rings()) {
    std::lock_guard lock(ring->mu);
    const std::uint64_t size = ring->slots.size();
    const std::uint64_t resident = ring->next < size ? ring->next : size;
    // Oldest-first: when the ring wrapped, the oldest live slot is the one
    // the next write would overwrite.
    const std::uint64_t begin = ring->next < size ? 0 : ring->next;
    for (std::uint64_t i = 0; i < resident; ++i) {
      const TraceEvent& e = ring->slots[(begin + i) % size];
      if (e.name == nullptr) continue;
      if (!first) out += ',';
      first = false;
      // ts/dur are microseconds (doubles) per the trace-event spec.
      std::snprintf(buffer, sizeof buffer,
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%.3f,\"dur\":%.3f",
                    e.name, e.category, ring->tid,
                    static_cast<double>(e.start_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0);
      out += buffer;
      if (e.has_arg) {
        std::snprintf(buffer, sizeof buffer,
                      ",\"args\":{\"value\":%" PRIu64 "}", e.arg);
        out += buffer;
      }
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  return std::fclose(out) == 0 && ok;
}

}  // namespace tinyevm::obs
