#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace tinyevm::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "untyped";
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{a="x",b="y"}` — with `extra` (used for `le`) appended last —
/// or an empty string when there are no labels at all.
std::string label_block(const LabelSet& labels, const std::string& extra_key,
                        const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  // Integral values (the common case: counters, bucket counts) print
  // without an exponent or trailing zeros.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", v);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.9g", v);
  }
  return buffer;
}

/// JSON string escaping (control chars, quote, backslash).
std::string escape_json(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus_text(const std::vector<MetricFamily>& families) {
  std::string out;
  char buffer[64];
  for (const MetricFamily& family : families) {
    out += "# HELP " + family.name + ' ' + family.help + '\n';
    out += "# TYPE " + family.name + ' ' + type_name(family.type) + '\n';
    for (const Sample& sample : family.samples) {
      if (family.type != MetricType::Histogram) {
        out += family.name + label_block(sample.labels, {}, {}) + ' ' +
               format_value(sample.value) + '\n';
        continue;
      }
      // Histogram: cumulative buckets, then sum and count.
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        cumulative += sample.histogram.buckets[b];
        std::string le;
        if (b + 1 < Histogram::kBuckets) {
          std::snprintf(buffer, sizeof buffer, "%" PRIu64,
                        Histogram::upper_bound(b));
          le = buffer;
        } else {
          le = "+Inf";
        }
        std::snprintf(buffer, sizeof buffer, "%" PRIu64, cumulative);
        out += family.name + "_bucket" +
               label_block(sample.labels, "le", le) + ' ' + buffer + '\n';
      }
      std::snprintf(buffer, sizeof buffer, "%" PRIu64, sample.histogram.sum);
      out += family.name + "_sum" + label_block(sample.labels, {}, {}) + ' ' +
             buffer + '\n';
      std::snprintf(buffer, sizeof buffer, "%" PRIu64, sample.histogram.count);
      out += family.name + "_count" + label_block(sample.labels, {}, {}) +
             ' ' + buffer + '\n';
    }
  }
  return out;
}

std::string to_json(const std::vector<MetricFamily>& families) {
  std::string out = "{\"metrics\":[";
  char buffer[64];
  bool first_family = true;
  for (const MetricFamily& family : families) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"" + escape_json(family.name) + "\",\"type\":\"" +
           type_name(family.type) + "\",\"help\":\"" +
           escape_json(family.help) + "\",\"samples\":[";
    bool first_sample = true;
    for (const Sample& sample : family.samples) {
      if (!first_sample) out += ',';
      first_sample = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : sample.labels) {
        if (!first_label) out += ',';
        first_label = false;
        out += '"' + escape_json(key) + "\":\"" + escape_json(value) + '"';
      }
      out += '}';
      if (family.type != MetricType::Histogram) {
        out += ",\"value\":" +
               (std::isfinite(sample.value) ? format_value(sample.value)
                                            : std::string("null"));
      } else {
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (b != 0) out += ',';
          if (b + 1 < Histogram::kBuckets) {
            std::snprintf(buffer, sizeof buffer,
                          "{\"le\":%" PRIu64 ",\"n\":%" PRIu64 "}",
                          Histogram::upper_bound(b),
                          sample.histogram.buckets[b]);
          } else {  // the +Inf bucket has no finite bound
            std::snprintf(buffer, sizeof buffer,
                          "{\"le\":null,\"n\":%" PRIu64 "}",
                          sample.histogram.buckets[b]);
          }
          out += buffer;
        }
        std::snprintf(buffer, sizeof buffer,
                      "],\"sum\":%" PRIu64 ",\"count\":%" PRIu64,
                      sample.histogram.sum, sample.histogram.count);
        out += buffer;
      }
      out += '}';
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string prometheus_scrape() {
  return to_prometheus_text(Registry::instance().collect());
}

std::string json_scrape() {
  return to_json(Registry::instance().collect());
}

}  // namespace tinyevm::obs
