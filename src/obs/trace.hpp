// Span tracing with per-thread ring buffers and Chrome trace-event export.
//
// A Span marks one timed region (a hub request, a Vm execute, an ECDSA
// sign). Completed spans are appended to the calling thread's ring buffer
// — one slot write with no allocation and no cross-thread contention (the
// per-ring lock is only ever shared with a dump) — and the rings are only
// walked at dump time, where they serialize to the Chrome trace-event
// JSON array that chrome://tracing / Perfetto loads directly. Rings
// overwrite their oldest entries, so tracing a long run keeps the most
// recent window instead of growing without bound.
//
// Tracing is off by default: a Span constructed while disabled reads one
// relaxed atomic and stays inert (with -DTINYEVM_OBS=OFF it compiles to
// nothing). Span names and categories must be pointers to storage that
// outlives the dump — string literals or registry-owned engine names.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tinyevm::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
std::uint64_t trace_now_ns() noexcept;
}  // namespace detail

inline bool trace_enabled() noexcept {
#ifdef TINYEVM_OBS_DISABLED
  return false;
#else
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#endif
}

/// One completed trace event ("ph":"X" — complete event with duration).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< steady-clock, offset from process epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;       ///< one numeric payload (gas, ops, bytes)
  bool has_arg = false;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Turns tracing on with fresh rings of `ring_capacity` events per
  /// thread. Any events recorded before this call are discarded, and
  /// thread ids restart from 0 — a dump after enable() is deterministic
  /// up to timestamps.
  void enable(std::size_t ring_capacity = 16384);
  void disable();

  /// Records a completed event on the calling thread's ring. No-op while
  /// disabled. `name`/`category` must outlive the dump.
  void emit(const char* name, const char* category, std::uint64_t start_ns,
            std::uint64_t end_ns) {
    emit_event(TraceEvent{name, category, start_ns,
                          end_ns > start_ns ? end_ns - start_ns : 0, 0,
                          false});
  }
  void emit_event(const TraceEvent& event);

  /// Serializes every ring as Chrome trace-event JSON
  /// ({"traceEvents":[...]}). Events appear per-thread in chronological
  /// order (ring order); threads in registration order.
  [[nodiscard]] std::string chrome_trace_json() const;
  /// chrome_trace_json() to a file; false (with errno intact) on I/O
  /// failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Events currently resident across all rings (drops from overwrite
  /// excluded — see dropped()).
  [[nodiscard]] std::size_t event_count() const;
  /// Events lost to ring overwrite since enable().
  [[nodiscard]] std::uint64_t dropped() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;

  /// One thread's ring. Only the owning thread appends; the per-ring
  /// mutex exists solely so dumps can read a consistent snapshot — on the
  /// emit path it is uncontended (no two emitters ever share a ring).
  struct ThreadRing {
    mutable std::mutex mu;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> slots;
    std::uint64_t next = 0;  ///< monotone write index; slot = next % size
  };

  ThreadRing* ring_for_this_thread();
  [[nodiscard]] std::vector<std::shared_ptr<ThreadRing>> snapshot_rings()
      const;

  mutable std::mutex mu_;  // guards ring registration / the rings_ list
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::size_t ring_capacity_ = 16384;
  std::atomic<std::uint64_t> epoch_{0};  ///< enable() generation (TLS check)
  std::uint32_t next_tid_ = 0;
};

/// RAII span: captures the start time at construction (when tracing is
/// enabled) and emits a complete event at destruction.
class Span {
 public:
  explicit Span(const char* name, const char* category = "tinyevm") noexcept {
    if (!trace_enabled()) return;
    name_ = name;
    category_ = category;
    start_ns_ = detail::trace_now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_ == nullptr) return;
    TraceEvent e;
    e.name = name_;
    e.category = category_;
    e.start_ns = start_ns_;
    const std::uint64_t end = detail::trace_now_ns();
    e.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
    e.arg = arg_;
    e.has_arg = has_arg_;
    Tracer::instance().emit_event(e);
  }

  /// Attaches the one numeric payload shown under args in the viewer.
  void set_arg(std::uint64_t v) noexcept {
    arg_ = v;
    has_arg_ = name_ != nullptr;
  }

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace tinyevm::obs
